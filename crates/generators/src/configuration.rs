//! Configuration model: random graphs with a prescribed degree sequence.
//!
//! Useful as a null model in the robustness experiments: it matches the
//! degree sequence of a preferential-attachment graph while destroying all
//! other structure, which isolates how much of User-Matching's performance
//! comes from the degree distribution alone.

use rand::seq::SliceRandom;
use rand::Rng;
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Generates a (simple) configuration-model graph for the given degree
/// sequence: each node `v` gets `degrees[v]` half-edges ("stubs"), the stub
/// list is shuffled, and consecutive stubs are paired. Self-loops and
/// parallel edges produced by the pairing are dropped, so realized degrees
/// can be slightly below the requested ones (the usual "erased configuration
/// model").
pub fn configuration_model<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<CsrGraph, GraphError> {
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!(
            "degree sequence sums to {total}, which is odd"
        )));
    }
    let n = degrees.len();
    let mut stubs: Vec<u32> = Vec::with_capacity(total);
    for (v, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(v as u32);
        }
    }
    stubs.shuffle(rng);
    let mut builder = GraphBuilder::undirected(n);
    builder.reserve_edges(total / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            builder.add_edge(NodeId(pair[0]), NodeId(pair[1]));
        }
    }
    builder.ensure_nodes(n);
    Ok(builder.build())
}

/// Extracts the degree sequence of `g` (handy for generating a
/// degree-matched null model of an existing graph).
pub fn degree_sequence(g: &CsrGraph) -> Vec<usize> {
    g.nodes().map(|v| g.degree(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_odd_degree_sum() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(configuration_model(&[1, 1, 1], &mut rng).is_err());
        assert!(configuration_model(&[2, 1, 1], &mut rng).is_ok());
    }

    #[test]
    fn empty_sequence_gives_empty_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = configuration_model(&[], &mut rng).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn zero_degrees_stay_isolated() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = configuration_model(&[0, 0, 2, 2, 0], &mut rng).unwrap();
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.degree(NodeId(1)), 0);
        assert_eq!(g.degree(NodeId(4)), 0);
    }

    #[test]
    fn realized_degrees_do_not_exceed_requested() {
        let mut rng = StdRng::seed_from_u64(2);
        let degrees: Vec<usize> = (0..500).map(|i| (i % 7) + 1).collect();
        let degrees = if degrees.iter().sum::<usize>() % 2 == 1 {
            let mut d = degrees;
            d[0] += 1;
            d
        } else {
            degrees
        };
        let g = configuration_model(&degrees, &mut rng).unwrap();
        for (v, &want) in degrees.iter().enumerate() {
            assert!(g.degree(NodeId(v as u32)) <= want);
        }
        // The erased model loses only a small fraction of edges for sparse
        // sequences.
        let want_edges: usize = degrees.iter().sum::<usize>() / 2;
        assert!(g.edge_count() as f64 > 0.9 * want_edges as f64);
    }

    #[test]
    fn degree_sequence_roundtrip_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let original =
            crate::preferential_attachment::preferential_attachment(2_000, 4, &mut rng).unwrap();
        let seq = degree_sequence(&original);
        let mut seq_adj = seq.clone();
        if seq_adj.iter().sum::<usize>() % 2 == 1 {
            seq_adj[0] += 1;
        }
        let null = configuration_model(&seq_adj, &mut rng).unwrap();
        assert_eq!(null.node_count(), original.node_count());
        let ratio = null.edge_count() as f64 / original.edge_count() as f64;
        assert!(ratio > 0.85 && ratio <= 1.05, "edge ratio {ratio}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let degrees: Vec<usize> = vec![3; 100];
        let g1 = configuration_model(&degrees, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = configuration_model(&degrees, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
    }
}
