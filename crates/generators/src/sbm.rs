//! Stochastic block model.
//!
//! Used in the extension experiments: the paper's correlated-deletion
//! scenario (Table 4) models users whose *communities* differ between the
//! two networks. The SBM gives a second, simpler community-structured
//! underlying graph for stress-testing the same phenomenon and for the
//! property tests of the community-deletion realization model.

use crate::check_probability;
use rand::Rng;
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Generates a stochastic block model graph.
///
/// `block_sizes[b]` nodes belong to block `b`; an edge between two nodes of
/// the same block exists with probability `p_in`, between different blocks
/// with probability `p_out`. Returns the graph and the per-node block labels.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    block_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<(CsrGraph, Vec<u32>), GraphError> {
    check_probability("p_in", p_in)?;
    check_probability("p_out", p_out)?;
    if block_sizes.is_empty() {
        return Err(GraphError::InvalidParameter("need at least one block".into()));
    }
    let n: usize = block_sizes.iter().sum();
    let mut labels = Vec::with_capacity(n);
    for (b, &size) in block_sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(b as u32, size));
    }

    let mut builder = GraphBuilder::undirected(n);
    // Simple pairwise sampling; the SBM instances used in tests and
    // experiments are small (tens of thousands of pairs), so the O(n^2) loop
    // is acceptable and keeps the implementation transparent.
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen::<f64>() < p {
                builder.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
    }
    builder.ensure_nodes(n);
    Ok((builder.build(), labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(stochastic_block_model(&[], 0.5, 0.1, &mut rng).is_err());
        assert!(stochastic_block_model(&[10], 1.5, 0.1, &mut rng).is_err());
        assert!(stochastic_block_model(&[10], 0.5, -0.1, &mut rng).is_err());
    }

    #[test]
    fn labels_match_block_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, labels) = stochastic_block_model(&[5, 10, 15], 0.3, 0.01, &mut rng).unwrap();
        assert_eq!(g.node_count(), 30);
        assert_eq!(labels.len(), 30);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 5);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 10);
        assert_eq!(labels.iter().filter(|&&l| l == 2).count(), 15);
    }

    #[test]
    fn intra_block_edges_dominate_when_p_in_is_large() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, labels) = stochastic_block_model(&[100, 100], 0.2, 0.01, &mut rng).unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edges() {
            if labels[e.src.index()] == labels[e.dst.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = stochastic_block_model(&[10, 10], 1.0, 0.0, &mut rng).unwrap();
        // Two disjoint cliques of size 10.
        assert_eq!(g.edge_count(), 2 * (10 * 9 / 2));
        let (g0, _) = stochastic_block_model(&[10, 10], 0.0, 0.0, &mut rng).unwrap();
        assert_eq!(g0.edge_count(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a =
            stochastic_block_model(&[50, 50], 0.1, 0.01, &mut StdRng::seed_from_u64(4)).unwrap();
        let b =
            stochastic_block_model(&[50, 50], 0.1, 0.01, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
