//! Erdős–Rényi random graphs.
//!
//! §4.1 of the paper ("Warm up: Random Graphs") analyses User-Matching when
//! the underlying network is drawn from `G(n, p)`. The generator below uses
//! geometric skipping so that sparse graphs cost `O(n + m)` rather than
//! `O(n^2)` coin flips, which keeps the warm-up experiments fast even at the
//! paper's `n p ≈ c log n` densities.

use crate::check_probability;
use rand::Rng;
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Samples `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// Uses the standard skip-sampling technique: instead of flipping a coin per
/// pair, the number of non-edges to skip before the next edge follows a
/// geometric distribution.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<CsrGraph, GraphError> {
    check_probability("p", p)?;
    let mut builder = GraphBuilder::undirected(n);
    if n < 2 || p == 0.0 {
        return Ok(builder.build());
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder.add_edge(NodeId(u), NodeId(v));
            }
        }
        return Ok(builder.build());
    }

    let expected_edges = (n as f64 * (n as f64 - 1.0) / 2.0 * p) as usize;
    builder.reserve_edges(expected_edges + 16);

    // Iterate over the upper triangle in row-major order, skipping ahead by
    // geometric jumps. `pos` indexes pairs (u, v) with u < v linearly.
    let log_q = (1.0 - p).ln();
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut pos: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as u64;
        pos = match pos.checked_add(skip) {
            Some(p) => p,
            None => break,
        };
        if pos >= total_pairs {
            break;
        }
        let (u, v) = pair_from_linear_index(pos, n as u64);
        builder.add_edge(NodeId(u as u32), NodeId(v as u32));
        pos += 1;
        if pos >= total_pairs {
            break;
        }
    }
    Ok(builder.build())
}

/// Samples `G(n, m)`: a graph with exactly `m` distinct edges chosen
/// uniformly among all unordered pairs.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<CsrGraph, GraphError> {
    let max_edges = if n < 2 { 0 } else { n * (n - 1) / 2 };
    if m > max_edges {
        return Err(GraphError::InvalidParameter(format!(
            "m = {m} exceeds the maximum {max_edges} edges for n = {n}"
        )));
    }
    let mut builder = GraphBuilder::undirected(n);
    builder.reserve_edges(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            builder.add_edge(NodeId(key.0), NodeId(key.1));
        }
    }
    Ok(builder.build())
}

/// Maps a linear index over the upper triangle of an `n × n` matrix to the
/// pair `(u, v)` with `u < v`.
fn pair_from_linear_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u (0-based) contains the pairs (u, u+1..n), i.e. n-1-u of them, so
    // it starts at offset S(u) = u*(n-1) - u*(u-1)/2. Invert with the
    // quadratic formula for an initial guess, then correct locally for
    // floating-point error.
    let row_start = |u: u64| u * (n - 1) - u * u.saturating_sub(1) / 2;
    let mut u = ((2.0 * n as f64
        - 1.0
        - ((2.0 * n as f64 - 1.0).powi(2) - 8.0 * idx as f64).max(0.0).sqrt())
        / 2.0)
        .floor() as u64;
    u = u.min(n.saturating_sub(2));
    while u > 0 && row_start(u) > idx {
        u -= 1;
    }
    while u + 1 < n && row_start(u + 1) <= idx {
        u += 1;
    }
    let v = idx - row_start(u) + u + 1;
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_index_enumerates_upper_triangle() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        let total = n * (n - 1) / 2;
        for idx in 0..total {
            let (u, v) = pair_from_linear_index(idx, n);
            assert!(u < v, "u={u} v={v} idx={idx}");
            assert!(v < n);
            assert!(seen.insert((u, v)), "duplicate pair ({u},{v}) at idx {idx}");
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn gnp_zero_probability_has_no_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(100, 0.0, &mut rng).unwrap();
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn gnp_probability_one_is_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn gnp_rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, -0.2, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_is_near_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 2000;
        let p = 0.01;
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = n as f64 * (n as f64 - 1.0) / 2.0 * p;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.1 * expected,
            "edges {actual} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_is_deterministic_for_a_seed() {
        let g1 = gnp(500, 0.01, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = gnp(500, 0.01, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
        let g3 = gnp(500, 0.01, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(100, 250, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 250);
        assert_eq!(g.node_count(), 100);
    }

    #[test]
    fn gnm_rejects_impossible_edge_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(gnm(5, 11, &mut rng).is_err());
        assert!(gnm(1, 1, &mut rng).is_err());
        assert!(gnm(5, 10, &mut rng).is_ok());
    }

    #[test]
    fn small_graphs_are_handled() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(0, 0.5, &mut rng).unwrap().node_count(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnm(0, 0, &mut rng).unwrap().node_count(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn gnp_never_produces_self_loops_or_out_of_range(n in 1usize..200, p in 0.0f64..0.2, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = gnp(n, p, &mut rng).unwrap();
            proptest::prop_assert_eq!(g.node_count(), n);
            for e in g.edges() {
                proptest::prop_assert!(e.src != e.dst);
                proptest::prop_assert!((e.dst.index()) < n);
            }
        }
    }
}
