//! Temporal graphs: edge lists with timestamps.
//!
//! The paper's "real world scenarios" experiments (Table 5, Figure 4) build
//! the two copies not by random deletion but by *time slicing*: the DBLP
//! copies keep publications from even vs odd years, the Gowalla copies keep
//! co-check-ins from even vs odd months. Since those datasets are not
//! available offline, we generate temporal graphs with the same structure —
//! a growing network whose edges carry discrete timestamps — and let
//! `snr-sampling::time_slice` cut them the same way the paper cuts the real
//! data.

use rand::Rng;
use serde::{Deserialize, Serialize};
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// A timestamped edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalEdge {
    /// First endpoint.
    pub src: NodeId,
    /// Second endpoint.
    pub dst: NodeId,
    /// Discrete timestamp (year, month, … — the unit is up to the caller).
    pub time: u32,
}

/// An undirected graph whose edges carry discrete timestamps. The same node
/// pair may appear multiple times with different timestamps (e.g. two
/// co-authors publishing in several years).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TemporalGraph {
    node_count: usize,
    edges: Vec<TemporalEdge>,
}

impl TemporalGraph {
    /// Creates a temporal graph from parts.
    pub fn new(node_count: usize, edges: Vec<TemporalEdge>) -> Self {
        TemporalGraph { node_count, edges }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All timestamped edges.
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Number of timestamped edge records.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Largest timestamp present, or `None` for an edgeless graph.
    pub fn max_time(&self) -> Option<u32> {
        self.edges.iter().map(|e| e.time).max()
    }

    /// Materializes the static graph containing every edge whose timestamp
    /// satisfies `keep`.
    pub fn slice<F: Fn(u32) -> bool>(&self, keep: F) -> CsrGraph {
        let mut b = GraphBuilder::undirected(self.node_count);
        for e in &self.edges {
            if keep(e.time) {
                b.add_edge(e.src, e.dst);
            }
        }
        b.ensure_nodes(self.node_count);
        b.build()
    }

    /// Materializes the static graph with every edge regardless of time.
    pub fn flatten(&self) -> CsrGraph {
        self.slice(|_| true)
    }

    /// Generates a temporal preferential-attachment graph: nodes arrive in
    /// order, each bringing `m` degree-proportional edges; the edge timestamp
    /// is drawn uniformly from `0..periods` *per edge* (a co-authorship /
    /// co-check-in can happen in any period, repeatedly).
    ///
    /// `repeat_prob` is the probability that an edge is duplicated into a
    /// second, independently chosen period — real collaboration edges often
    /// recur, which is what makes time-sliced copies overlap at all.
    pub fn preferential_attachment<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        periods: u32,
        repeat_prob: f64,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if n == 0 || m == 0 {
            return Err(GraphError::InvalidParameter("temporal PA needs n >= 1 and m >= 1".into()));
        }
        if periods == 0 {
            return Err(GraphError::InvalidParameter("periods must be >= 1".into()));
        }
        crate::check_probability("repeat_prob", repeat_prob)?;

        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
        endpoints.extend(std::iter::repeat_n(0, 2 * m));
        let mut edges = Vec::with_capacity(n * m);
        for v in 1..n as u32 {
            for _ in 0..m {
                let target = endpoints[rng.gen_range(0..endpoints.len())];
                endpoints.push(target);
                endpoints.push(v);
                if target == v {
                    continue;
                }
                let t = rng.gen_range(0..periods);
                edges.push(TemporalEdge { src: NodeId(v), dst: NodeId(target), time: t });
                if rng.gen::<f64>() < repeat_prob {
                    let t2 = rng.gen_range(0..periods);
                    edges.push(TemporalEdge { src: NodeId(v), dst: NodeId(target), time: t2 });
                }
            }
        }
        Ok(TemporalGraph { node_count: n, edges })
    }

    /// Generates a temporal *affiliation* graph: `papers` communities are
    /// created over `periods` time steps; each paper has a small author set
    /// drawn preferentially (prolific authors keep publishing), and all
    /// co-author pairs of a paper get an edge stamped with the paper's
    /// period. Crucially for the paper's odd/even-year experiment, research
    /// teams *recur*: with probability ~0.5 a paper reuses a previously seen
    /// team (possibly swapping one member), so long-running collaborations
    /// show up in many different periods — exactly what makes the
    /// time-sliced copies overlap in real DBLP data.
    pub fn affiliation<R: Rng + ?Sized>(
        authors: usize,
        papers: usize,
        authors_per_paper: usize,
        periods: u32,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if authors == 0 || papers == 0 || authors_per_paper < 2 {
            return Err(GraphError::InvalidParameter(
                "temporal affiliation needs authors >= 1, papers >= 1, authors_per_paper >= 2"
                    .into(),
            ));
        }
        if periods == 0 {
            return Err(GraphError::InvalidParameter("periods must be >= 1".into()));
        }
        // Preferential author sampling: every authorship appends the author
        // to `stubs`; papers pick a mix of preferential and uniform authors
        // so that newcomers keep entering the network.
        let mut stubs: Vec<u32> = Vec::with_capacity(papers * authors_per_paper);
        let mut teams: Vec<Vec<u32>> = Vec::new();
        let mut edges = Vec::with_capacity(papers * authors_per_paper * authors_per_paper / 2);
        for p in 0..papers {
            // Timestamps are assigned round-robin so that every period
            // contains both old and new teams.
            let time = (p as u32) % periods;
            let team: Vec<u32> = if !teams.is_empty() && rng.gen::<f64>() < 0.55 {
                // Recurring collaboration: reuse an existing team, sometimes
                // rotating one member in.
                let mut team = teams[rng.gen_range(0..teams.len())].clone();
                if rng.gen::<f64>() < 0.3 {
                    let idx = rng.gen_range(0..team.len());
                    let replacement = rng.gen_range(0..authors as u32);
                    if !team.contains(&replacement) {
                        team[idx] = replacement;
                    }
                }
                team
            } else {
                let mut team: Vec<u32> = Vec::with_capacity(authors_per_paper);
                let mut guard = 0;
                while team.len() < authors_per_paper && guard < 20 * authors_per_paper {
                    guard += 1;
                    let a = if stubs.is_empty() || rng.gen::<f64>() < 0.3 {
                        rng.gen_range(0..authors as u32)
                    } else {
                        stubs[rng.gen_range(0..stubs.len())]
                    };
                    if !team.contains(&a) {
                        team.push(a);
                    }
                }
                team
            };
            for &a in &team {
                stubs.push(a);
            }
            teams.push(team.clone());
            for i in 0..team.len() {
                for j in (i + 1)..team.len() {
                    edges.push(TemporalEdge { src: NodeId(team[i]), dst: NodeId(team[j]), time });
                }
            }
        }
        Ok(TemporalGraph { node_count: authors, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slice_partitions_edges_by_time() {
        let edges = vec![
            TemporalEdge { src: NodeId(0), dst: NodeId(1), time: 0 },
            TemporalEdge { src: NodeId(1), dst: NodeId(2), time: 1 },
            TemporalEdge { src: NodeId(2), dst: NodeId(3), time: 2 },
        ];
        let tg = TemporalGraph::new(4, edges);
        let even = tg.slice(|t| t % 2 == 0);
        let odd = tg.slice(|t| t % 2 == 1);
        assert_eq!(even.edge_count(), 2);
        assert_eq!(odd.edge_count(), 1);
        assert_eq!(tg.flatten().edge_count(), 3);
        assert_eq!(tg.max_time(), Some(2));
    }

    #[test]
    fn temporal_pa_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(TemporalGraph::preferential_attachment(0, 3, 4, 0.2, &mut rng).is_err());
        assert!(TemporalGraph::preferential_attachment(10, 0, 4, 0.2, &mut rng).is_err());
        assert!(TemporalGraph::preferential_attachment(10, 3, 0, 0.2, &mut rng).is_err());
        assert!(TemporalGraph::preferential_attachment(10, 3, 4, 1.2, &mut rng).is_err());
    }

    #[test]
    fn temporal_pa_covers_all_periods() {
        let mut rng = StdRng::seed_from_u64(1);
        let tg = TemporalGraph::preferential_attachment(2_000, 5, 6, 0.3, &mut rng).unwrap();
        let mut seen = vec![false; 6];
        for e in tg.edges() {
            assert!(e.time < 6);
            seen[e.time as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        // Repeats mean the temporal edge count exceeds the flattened count.
        assert!(tg.edge_count() > tg.flatten().edge_count());
    }

    #[test]
    fn temporal_affiliation_produces_cliques_per_paper() {
        let mut rng = StdRng::seed_from_u64(2);
        let tg = TemporalGraph::affiliation(500, 800, 4, 10, &mut rng).unwrap();
        assert_eq!(tg.node_count(), 500);
        // 800 papers * C(4,2)=6 pairs, minus teams that fell short.
        assert!(tg.edge_count() > 3_000, "edge count {}", tg.edge_count());
        assert!(tg.max_time().unwrap() < 10);
    }

    #[test]
    fn temporal_affiliation_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(TemporalGraph::affiliation(0, 10, 3, 5, &mut rng).is_err());
        assert!(TemporalGraph::affiliation(10, 0, 3, 5, &mut rng).is_err());
        assert!(TemporalGraph::affiliation(10, 10, 1, 5, &mut rng).is_err());
        assert!(TemporalGraph::affiliation(10, 10, 3, 0, &mut rng).is_err());
    }

    #[test]
    fn slices_of_disjoint_periods_share_nodes_not_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let tg = TemporalGraph::affiliation(300, 600, 3, 2, &mut rng).unwrap();
        let a = tg.slice(|t| t == 0);
        let b = tg.slice(|t| t == 1);
        assert_eq!(a.node_count(), b.node_count());
        // Both slices are substantial.
        assert!(a.edge_count() > 100);
        assert!(b.edge_count() > 100);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let tg = TemporalGraph::preferential_attachment(100, 3, 4, 0.1, &mut rng).unwrap();
        let json = serde_json::to_string(&tg).unwrap();
        let tg2: TemporalGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(tg, tg2);
    }
}
