//! Watts–Strogatz small-world graphs.
//!
//! Not used directly in the paper's evaluation, but the paper's analysis
//! leans on networks having "distinct neighbors including some long-range /
//! random connections not shared with those immediately around them"
//! (citing Granovetter and Kleinberg). The Watts–Strogatz model is the
//! canonical way to dial that property up and down, and the robustness
//! experiments in this reproduction use it to probe how User-Matching
//! degrades as a network becomes more locally clustered (high overlap among
//! neighborhoods) versus more random.

use crate::check_probability;
use rand::Rng;
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Generates a Watts–Strogatz graph: a ring lattice where each node is
/// connected to its `k` nearest neighbors (`k/2` on each side), with every
/// edge rewired to a uniformly random endpoint with probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<CsrGraph, GraphError> {
    check_probability("beta", beta)?;
    if n == 0 {
        return Err(GraphError::InvalidParameter("watts_strogatz needs n >= 1".into()));
    }
    if !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!("k = {k} must be even")));
    }
    if k >= n {
        return Err(GraphError::InvalidParameter(format!("k = {k} must be smaller than n = {n}")));
    }

    let mut builder = GraphBuilder::undirected(n);
    builder.reserve_edges(n * k / 2);
    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            let (a, mut b) = (u as u32, v as u32);
            if beta > 0.0 && rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a random node, avoiding
                // self-loops; duplicate edges are merged at build time.
                let mut w = rng.gen_range(0..n as u32);
                let mut guard = 0;
                while w == a && guard < 16 {
                    w = rng.gen_range(0..n as u32);
                    guard += 1;
                }
                b = w;
            }
            if a != b {
                builder.add_edge(NodeId(a), NodeId(b));
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snr_graph::stats::global_clustering_coefficient;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(watts_strogatz(0, 2, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 2, 1.5, &mut rng).is_err());
    }

    #[test]
    fn zero_beta_gives_exact_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50;
        let k = 4;
        let g = watts_strogatz(n, k, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), n * k / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), k);
        }
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(0), NodeId(49)));
        assert!(g.has_edge(NodeId(0), NodeId(48)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let lattice = watts_strogatz(400, 8, 0.0, &mut StdRng::seed_from_u64(2)).unwrap();
        let random = watts_strogatz(400, 8, 1.0, &mut StdRng::seed_from_u64(2)).unwrap();
        let c_lattice = global_clustering_coefficient(&lattice);
        let c_random = global_clustering_coefficient(&random);
        assert!(c_lattice > 0.4, "lattice clustering {c_lattice}");
        assert!(c_random < c_lattice / 2.0, "random clustering {c_random} vs {c_lattice}");
    }

    #[test]
    fn edge_count_is_stable_under_rewiring() {
        let g = watts_strogatz(300, 6, 0.3, &mut StdRng::seed_from_u64(3)).unwrap();
        // Rewiring can only merge duplicates or drop self-loop rewires, so
        // the count stays close to n*k/2.
        assert!(g.edge_count() as f64 > 0.95 * (300.0 * 6.0 / 2.0));
        assert!(g.edge_count() <= 300 * 6 / 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = watts_strogatz(200, 4, 0.2, &mut StdRng::seed_from_u64(4)).unwrap();
        let g2 = watts_strogatz(200, 4, 0.2, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(g1, g2);
    }
}
