//! Preferential attachment (Barabási–Albert / Bollobás–Riordan).
//!
//! The paper's main theoretical results (§4.2) are proved for the
//! preferential-attachment model `G^m_n`: nodes arrive one at a time, each
//! new node attaches `m` edges whose endpoints are chosen proportionally to
//! the current degrees (including the new node's partially-attached degree,
//! following Bollobás–Riordan). The implementation uses the standard
//! "repeated endpoints" array: every time an edge `(u, v)` is inserted, both
//! endpoints are appended to a vector, so sampling an element of that vector
//! uniformly at random is exactly degree-proportional sampling.

use rand::Rng;
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Generates a preferential-attachment graph with `n` nodes and `m` edges per
/// arriving node (so close to `n·m` edges in total; self-loops produced by
/// the Bollobás–Riordan process are dropped when the simple graph is built,
/// and parallel edges are merged).
///
/// # Errors
/// Returns an error if `m == 0` or `n == 0`.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<CsrGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter("preferential attachment needs n >= 1".into()));
    }
    if m == 0 {
        return Err(GraphError::InvalidParameter("preferential attachment needs m >= 1".into()));
    }

    let mut builder = GraphBuilder::undirected(n);
    builder.reserve_edges(n * m);

    // `endpoints` holds one entry per edge endpoint inserted so far; sampling
    // uniformly from it is sampling a node with probability proportional to
    // its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m + 2 * m);

    // Node 0 starts with m self-loops in the Bollobás–Riordan construction;
    // represent them only in the endpoint multiset (the simple graph drops
    // self-loops) so that node 0 has non-zero attachment mass.
    endpoints.extend(std::iter::repeat_n(0, 2 * m));

    for v in 1..n as u32 {
        // The new node's edges are inserted one after another; each endpoint
        // is chosen from the multiset including the entries added for the
        // current node so far (this matches Definition 2 of the paper where
        // the new node can be selected with probability (d(u)+1)/(M_i+1);
        // we approximate by including already-placed endpoints of v).
        let mut chosen = Vec::with_capacity(m);
        for _ in 0..m {
            let total = endpoints.len();
            let target = endpoints[rng.gen_range(0..total)];
            chosen.push(target);
            endpoints.push(target);
            endpoints.push(v);
        }
        for &t in &chosen {
            if t != v {
                builder.add_edge(NodeId(v), NodeId(t));
            }
        }
    }
    builder.ensure_nodes(n);
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snr_graph::stats::{degree_histogram, power_law_exponent, GraphStats};

    #[test]
    fn rejects_degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(preferential_attachment(0, 3, &mut rng).is_err());
        assert!(preferential_attachment(10, 0, &mut rng).is_err());
    }

    #[test]
    fn node_and_edge_counts_are_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5_000;
        let m = 8;
        let g = preferential_attachment(n, m, &mut rng).unwrap();
        assert_eq!(g.node_count(), n);
        // Each arriving node contributes at most m edges; duplicates/self
        // loops remove a few but the total must stay close to n*m.
        assert!(g.edge_count() <= n * m);
        assert!(g.edge_count() as f64 > 0.9 * (n * m) as f64, "edges = {}", g.edge_count());
    }

    #[test]
    fn minimum_degree_is_respected_for_late_nodes() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = 5;
        let g = preferential_attachment(2_000, m, &mut rng).unwrap();
        // Every node other than the very first ones has degree >= 1, and the
        // vast majority have degree >= m (they keep their m out-edges unless
        // collapsed by duplicate choices).
        let low = g.nodes().filter(|&v| g.degree(v) < m).count();
        assert!(low < 200, "{low} nodes below degree m");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = preferential_attachment(20_000, 4, &mut rng).unwrap();
        let stats = GraphStats::compute(&g);
        // The maximum degree in PA grows like sqrt(n); far above the average.
        assert!(stats.max_degree > 50, "max degree {}", stats.max_degree);
        assert!(stats.max_degree as f64 > 10.0 * stats.avg_degree);
        // Power-law exponent should be roughly 3 (BA theory); allow slack.
        let alpha = power_law_exponent(&g, 8).expect("enough nodes for tail fit");
        assert!(alpha > 2.0 && alpha < 4.5, "alpha = {alpha}");
    }

    #[test]
    fn early_nodes_accumulate_high_degree() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = preferential_attachment(10_000, 5, &mut rng).unwrap();
        // "First-mover advantage" (Lemma 7): early nodes end up with much
        // larger degree than the median.
        let early_avg: f64 = (0..50).map(|i| g.degree(NodeId(i)) as f64).sum::<f64>() / 50.0;
        let hist = degree_histogram(&g);
        let median = {
            let mut seen = 0;
            let mut med = 0;
            for (d, &count) in hist.iter().enumerate() {
                seen += count;
                if seen >= g.node_count() / 2 {
                    med = d;
                    break;
                }
            }
            med
        };
        assert!(
            early_avg > 4.0 * median as f64,
            "early average degree {early_avg} vs median {median}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g1 = preferential_attachment(1_000, 3, &mut StdRng::seed_from_u64(99)).unwrap();
        let g2 = preferential_attachment(1_000, 3, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn single_node_graph_is_empty() {
        let g = preferential_attachment(1, 3, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
