//! R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos, SDM 2004).
//!
//! The paper uses three R-MAT graphs (RMAT24/26/28, up to 121M nodes and
//! 8.5G edges) for the scalability experiment of Table 2. We reproduce the
//! generator with the same recursive quadrant-splitting process; the
//! experiment harness instantiates it at laptop-friendly scales (the table
//! reports *relative* running times, so the shape of the scaling curve is
//! what matters).

use crate::check_probability;
use rand::Rng;
use serde::{Deserialize, Serialize};
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// R-MAT generator parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of nodes; the graph has `2^scale` nodes.
    pub scale: u32,
    /// Average number of edges per node; the generator draws
    /// `edge_factor * 2^scale` (directed) edge samples before deduplication.
    pub edge_factor: usize,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    // d = 1 - a - b - c
}

impl RmatConfig {
    /// The Graph500-style default parameters `(a, b, c, d) = (0.57, 0.19,
    /// 0.19, 0.05)` at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19 }
    }

    /// Probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) -> Result<(), GraphError> {
        check_probability("a", self.a)?;
        check_probability("b", self.b)?;
        check_probability("c", self.c)?;
        let d = self.d();
        if d < -1e-9 {
            return Err(GraphError::InvalidParameter(format!(
                "a + b + c = {} exceeds 1",
                self.a + self.b + self.c
            )));
        }
        if self.scale == 0 || self.scale > 31 {
            return Err(GraphError::InvalidParameter(format!(
                "scale = {} must be in 1..=31",
                self.scale
            )));
        }
        if self.edge_factor == 0 {
            return Err(GraphError::InvalidParameter("edge_factor must be >= 1".into()));
        }
        Ok(())
    }
}

/// Generates an undirected R-MAT graph.
pub fn rmat<R: Rng + ?Sized>(config: &RmatConfig, rng: &mut R) -> Result<CsrGraph, GraphError> {
    config.validate()?;
    let n: u64 = 1u64 << config.scale;
    let samples = (n as usize).saturating_mul(config.edge_factor);
    let mut builder = GraphBuilder::undirected(n as usize);
    builder.reserve_edges(samples);

    // Noise added to the quadrant probabilities at each level, as in the
    // original paper, to avoid exact self-similarity artifacts.
    let noise = 0.05;
    for _ in 0..samples {
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        let mut bit: u64 = n >> 1;
        while bit > 0 {
            let (mut a, mut b, mut c) = (config.a, config.b, config.c);
            // Symmetric multiplicative noise, renormalized.
            let jitter = |x: f64, r: &mut R| x * (1.0 - noise + 2.0 * noise * r.gen::<f64>());
            a = jitter(a, rng);
            b = jitter(b, rng);
            c = jitter(c, rng);
            let d = jitter(config.d().max(0.0), rng);
            let total = a + b + c + d;
            let roll: f64 = rng.gen::<f64>() * total;
            if roll < a {
                // top-left: no bits set
            } else if roll < a + b {
                v |= bit;
            } else if roll < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
            bit >>= 1;
        }
        if u != v {
            builder.add_edge(NodeId(u as u32), NodeId(v as u32));
        }
    }
    builder.ensure_nodes(n as usize);
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph500_defaults_sum_to_one() {
        let cfg = RmatConfig::graph500(10, 16);
        assert!((cfg.a + cfg.b + cfg.c + cfg.d() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = RmatConfig::graph500(0, 16);
        assert!(rmat(&cfg, &mut rng).is_err());
        cfg = RmatConfig::graph500(10, 0);
        assert!(rmat(&cfg, &mut rng).is_err());
        cfg = RmatConfig { a: 0.6, b: 0.3, c: 0.3, scale: 10, edge_factor: 4 };
        assert!(rmat(&cfg, &mut rng).is_err());
        cfg = RmatConfig { a: -0.1, b: 0.3, c: 0.3, scale: 10, edge_factor: 4 };
        assert!(rmat(&cfg, &mut rng).is_err());
    }

    #[test]
    fn node_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(&RmatConfig::graph500(12, 8), &mut rng).unwrap();
        assert_eq!(g.node_count(), 1 << 12);
    }

    #[test]
    fn edge_count_is_close_to_requested_samples() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = RmatConfig::graph500(13, 8);
        let g = rmat(&cfg, &mut rng).unwrap();
        let samples = (1usize << 13) * 8;
        // Self-loops and duplicates are removed, but skew means heavy nodes
        // attract repeats; require at least half of the samples survive.
        assert!(g.edge_count() > samples / 2, "edges = {}", g.edge_count());
        assert!(g.edge_count() <= samples);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = rmat(&RmatConfig::graph500(14, 16), &mut rng).unwrap();
        let stats = snr_graph::GraphStats::compute(&g);
        assert!(
            stats.max_degree as f64 > 20.0 * stats.avg_degree,
            "max {} avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig::graph500(10, 4);
        let g1 = rmat(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = rmat(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
    }
}
