//! Affiliation-network model (Lattanzi & Sivakumar, STOC 2009).
//!
//! The paper uses this model for its hardest synthetic experiment (Table 4):
//! a bipartite graph of users and *interests* (communities) is grown by a
//! preferential-attachment-like process, and two users are connected in the
//! social graph whenever they share an interest. The two observed copies are
//! then produced by deleting whole communities independently in each copy —
//! a highly correlated edge-deletion process that breaks the independence
//! assumptions of the analysis. We therefore expose not just the folded user
//! graph but the community memberships themselves, which `snr-sampling`
//! needs to implement that correlated deletion.

use rand::Rng;
use serde::{Deserialize, Serialize};
use snr_graph::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Parameters of the affiliation-network generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AffiliationConfig {
    /// Number of users (nodes of the folded social graph).
    pub users: usize,
    /// Number of communities (interests).
    pub communities: usize,
    /// Number of communities each user joins (preferentially by community
    /// size, mimicking the rich-get-richer affiliation growth).
    pub memberships_per_user: usize,
    /// Cap on how many co-members a user is linked to per community when the
    /// bipartite graph is folded. The real model connects all co-members,
    /// which is quadratic in community size; capping keeps the folded edge
    /// count near `users · memberships · cap` while preserving the
    /// community-correlated structure the experiment needs.
    pub fold_cap: usize,
}

impl Default for AffiliationConfig {
    fn default() -> Self {
        AffiliationConfig {
            users: 10_000,
            communities: 1_000,
            memberships_per_user: 4,
            fold_cap: 40,
        }
    }
}

/// An affiliation network: the folded user–user graph plus the community
/// memberships that generated it.
#[derive(Clone, Debug)]
pub struct AffiliationNetwork {
    /// Folded social graph over users.
    pub graph: CsrGraph,
    /// `communities[c]` lists the users belonging to community `c`.
    pub communities: Vec<Vec<NodeId>>,
    /// For each folded edge (canonical `src <= dst`), the community that
    /// created it. Used by the correlated-deletion realization model: an
    /// edge survives in a copy iff its community survives in that copy.
    pub edge_communities: Vec<(NodeId, NodeId, u32)>,
}

impl AffiliationNetwork {
    /// Generates an affiliation network.
    pub fn generate<R: Rng + ?Sized>(
        config: &AffiliationConfig,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        let AffiliationConfig { users, communities, memberships_per_user, fold_cap } = *config;
        if users == 0 || communities == 0 {
            return Err(GraphError::InvalidParameter(
                "affiliation model needs at least one user and one community".into(),
            ));
        }
        if memberships_per_user == 0 {
            return Err(GraphError::InvalidParameter("memberships_per_user must be >= 1".into()));
        }
        if fold_cap == 0 {
            return Err(GraphError::InvalidParameter("fold_cap must be >= 1".into()));
        }

        // --- Bipartite growth -------------------------------------------------
        // Users arrive one at a time and join `memberships_per_user` distinct
        // communities. Community choice is preferential: with probability
        // proportional to (current size + 1), via a repeated-endpoints list
        // seeded with one entry per community so empty communities can be
        // discovered.
        let mut membership: Vec<Vec<NodeId>> = vec![Vec::new(); communities];
        let mut community_endpoints: Vec<u32> = (0..communities as u32).collect();
        for u in 0..users as u32 {
            let mut joined = Vec::with_capacity(memberships_per_user);
            let mut guard = 0;
            while joined.len() < memberships_per_user && guard < 20 * memberships_per_user {
                guard += 1;
                let c = community_endpoints[rng.gen_range(0..community_endpoints.len())];
                if !joined.contains(&c) {
                    joined.push(c);
                    membership[c as usize].push(NodeId(u));
                    community_endpoints.push(c);
                }
            }
        }

        // --- Folding -----------------------------------------------------------
        // Within each community connect each member to up to `fold_cap`
        // other members (earlier members preferentially, which mirrors the
        // prototype-copying behaviour of the original model).
        let mut builder = GraphBuilder::undirected(users);
        let mut edge_communities = Vec::new();
        for (c, members) in membership.iter().enumerate() {
            for (i, &u) in members.iter().enumerate() {
                let count = i.min(fold_cap);
                if count == 0 {
                    continue;
                }
                // Link to `count` distinct earlier members chosen uniformly.
                let mut picked = std::collections::HashSet::with_capacity(count);
                while picked.len() < count {
                    let j = rng.gen_range(0..i);
                    picked.insert(j);
                }
                for j in picked {
                    let v = members[j];
                    builder.add_edge(u, v);
                    let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
                    edge_communities.push((a, b, c as u32));
                }
            }
        }
        builder.ensure_nodes(users);

        Ok(AffiliationNetwork { graph: builder.build(), communities: membership, edge_communities })
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.communities.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> AffiliationConfig {
        AffiliationConfig { users: 2_000, communities: 200, memberships_per_user: 3, fold_cap: 20 }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut rng = StdRng::seed_from_u64(0);
        let bad = AffiliationConfig { users: 0, ..small_config() };
        assert!(AffiliationNetwork::generate(&bad, &mut rng).is_err());
        let bad = AffiliationConfig { communities: 0, ..small_config() };
        assert!(AffiliationNetwork::generate(&bad, &mut rng).is_err());
        let bad = AffiliationConfig { memberships_per_user: 0, ..small_config() };
        assert!(AffiliationNetwork::generate(&bad, &mut rng).is_err());
        let bad = AffiliationConfig { fold_cap: 0, ..small_config() };
        assert!(AffiliationNetwork::generate(&bad, &mut rng).is_err());
    }

    #[test]
    fn every_user_joins_the_requested_number_of_communities() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = small_config();
        let net = AffiliationNetwork::generate(&cfg, &mut rng).unwrap();
        let mut per_user = vec![0usize; cfg.users];
        for members in &net.communities {
            for &u in members {
                per_user[u.index()] += 1;
            }
        }
        let complete = per_user.iter().filter(|&&c| c == cfg.memberships_per_user).count();
        // The rejection guard can very rarely fall short; essentially all
        // users must hit the target.
        assert!(complete as f64 > 0.99 * cfg.users as f64);
    }

    #[test]
    fn community_sizes_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = AffiliationNetwork::generate(&small_config(), &mut rng).unwrap();
        let mut sizes: Vec<usize> = net.communities.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        let max = *sizes.last().unwrap();
        let median = sizes[sizes.len() / 2];
        assert!(max >= 4 * median.max(1), "max {max} vs median {median}: not skewed");
    }

    #[test]
    fn edge_communities_reference_real_edges_and_communities() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = AffiliationNetwork::generate(&small_config(), &mut rng).unwrap();
        assert!(!net.edge_communities.is_empty());
        for &(a, b, c) in net.edge_communities.iter().take(500) {
            assert!(net.graph.has_edge(a, b));
            assert!(a.0 <= b.0);
            let members = &net.communities[c as usize];
            assert!(members.contains(&a) && members.contains(&b));
        }
    }

    #[test]
    fn folded_graph_is_reasonably_dense() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = small_config();
        let net = AffiliationNetwork::generate(&cfg, &mut rng).unwrap();
        // Each user creates up to memberships * fold_cap edges (bounded by
        // earlier members); require a healthy fraction of users to have
        // degree above the membership count.
        let well_connected =
            net.graph.nodes().filter(|&v| net.graph.degree(v) >= cfg.memberships_per_user).count();
        assert!(well_connected as f64 > 0.8 * cfg.users as f64);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let n1 =
            AffiliationNetwork::generate(&small_config(), &mut StdRng::seed_from_u64(11)).unwrap();
        let n2 =
            AffiliationNetwork::generate(&small_config(), &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(n1.graph, n2.graph);
        assert_eq!(n1.communities, n2.communities);
    }
}
