//! Cross-generator invariants: degree-sum/edge-count consistency (the
//! handshake lemma — every generator here produces simple graphs, so the
//! adjacency-entry count must be exactly twice the logical edge count),
//! edge-count bounds implied by each model's construction, and same-seed
//! determinism / cross-seed variation for the four generator families the
//! paper's evaluation relies on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snr_generators::{
    gnm, gnp, preferential_attachment, rmat, AffiliationConfig, AffiliationNetwork, RmatConfig,
};
use snr_graph::CsrGraph;

/// Handshake lemma for simple undirected graphs: the sum of degrees equals
/// twice the number of edges. Violations would mean duplicated or dangling
/// adjacency entries — exactly the corruption CSR normalization must prevent.
fn assert_degree_sum_invariant(g: &CsrGraph, label: &str) {
    assert_eq!(
        g.total_degree(),
        2 * g.edge_count(),
        "{label}: degree sum {} != 2 * edge count {}",
        g.total_degree(),
        g.edge_count()
    );
    let recount: usize = g.nodes().map(|v| g.degree(v)).sum();
    assert_eq!(recount, g.total_degree(), "{label}: per-node degrees disagree with raw arrays");
    for e in g.edges() {
        assert!(e.src != e.dst, "{label}: self-loop {e:?} in a simple graph");
    }
}

#[test]
fn preferential_attachment_degree_and_edge_invariants() {
    let mut rng = StdRng::seed_from_u64(101);
    let (n, m) = (3_000, 7);
    let g = preferential_attachment(n, m, &mut rng).unwrap();
    assert_degree_sum_invariant(&g, "preferential_attachment");
    assert_eq!(g.node_count(), n);
    // Each arriving node adds at most m edges; duplicate choices and dropped
    // self-loops can only remove edges.
    assert!(g.edge_count() <= (n - 1) * m);
    assert!(g.edge_count() as f64 > 0.85 * (n * m) as f64, "edges {}", g.edge_count());
}

#[test]
fn erdos_renyi_degree_and_edge_invariants() {
    let mut rng = StdRng::seed_from_u64(102);
    let (n, p) = (1_500, 0.008);
    let g = gnp(n, p, &mut rng).unwrap();
    assert_degree_sum_invariant(&g, "gnp");
    assert_eq!(g.node_count(), n);
    let expected = n as f64 * (n as f64 - 1.0) / 2.0 * p;
    assert!(
        (g.edge_count() as f64 - expected).abs() < 0.15 * expected,
        "gnp edge count {} far from expectation {expected}",
        g.edge_count()
    );

    let g = gnm(800, 2_000, &mut rng).unwrap();
    assert_degree_sum_invariant(&g, "gnm");
    assert_eq!(g.edge_count(), 2_000, "gnm must produce exactly m edges");
}

#[test]
fn affiliation_degree_and_edge_invariants() {
    let mut rng = StdRng::seed_from_u64(103);
    let cfg =
        AffiliationConfig { users: 1_500, communities: 150, memberships_per_user: 3, fold_cap: 15 };
    let net = AffiliationNetwork::generate(&cfg, &mut rng).unwrap();
    assert_degree_sum_invariant(&net.graph, "affiliation");
    assert_eq!(net.graph.node_count(), cfg.users);
    // Folding links each user to at most fold_cap earlier co-members per
    // membership, so the edge count is bounded by users * memberships * cap.
    assert!(
        net.graph.edge_count() <= cfg.users * cfg.memberships_per_user * cfg.fold_cap,
        "affiliation edge count {} above the folding bound",
        net.graph.edge_count()
    );
    // Total memberships are bounded by the per-user target.
    let memberships: usize = net.communities.iter().map(|c| c.len()).sum();
    assert!(memberships <= cfg.users * cfg.memberships_per_user);
}

#[test]
fn rmat_degree_and_edge_invariants() {
    let mut rng = StdRng::seed_from_u64(104);
    let cfg = RmatConfig::graph500(11, 8);
    let g = rmat(&cfg, &mut rng).unwrap();
    assert_degree_sum_invariant(&g, "rmat");
    assert_eq!(g.node_count(), 1 << 11);
    let samples = (1usize << 11) * 8;
    assert!(g.edge_count() <= samples);
    assert!(g.edge_count() > samples / 2, "rmat kept only {} of {samples} samples", g.edge_count());
}

#[test]
fn all_four_generators_are_seed_deterministic() {
    let pa = |seed: u64| preferential_attachment(800, 5, &mut StdRng::seed_from_u64(seed)).unwrap();
    let er = |seed: u64| gnp(600, 0.01, &mut StdRng::seed_from_u64(seed)).unwrap();
    let af = |seed: u64| {
        let cfg = AffiliationConfig {
            users: 600,
            communities: 60,
            memberships_per_user: 3,
            fold_cap: 10,
        };
        AffiliationNetwork::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap().graph
    };
    let rm =
        |seed: u64| rmat(&RmatConfig::graph500(9, 6), &mut StdRng::seed_from_u64(seed)).unwrap();

    assert_eq!(pa(7), pa(7), "preferential_attachment not deterministic");
    assert_eq!(er(7), er(7), "erdos_renyi not deterministic");
    assert_eq!(af(7), af(7), "affiliation not deterministic");
    assert_eq!(rm(7), rm(7), "rmat not deterministic");

    assert_ne!(pa(7), pa(8), "preferential_attachment ignores its seed");
    assert_ne!(er(7), er(8), "erdos_renyi ignores its seed");
    assert_ne!(af(7), af(8), "affiliation ignores its seed");
    assert_ne!(rm(7), rm(8), "rmat ignores its seed");
}
