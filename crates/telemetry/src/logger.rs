//! Leveled structured logging to stderr, independent of the trace switch.
//!
//! Messages look like `snr[warn] worker 2 died signal=9`. The active level
//! comes from `SNR_LOG` (default `info`); [`set_log_level`] overrides it at
//! runtime.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 0,
    /// Degraded-but-continuing conditions (worker deaths, checkpoint
    /// failures, ignored configuration).
    Warn = 1,
    /// Normal operational messages. The default level.
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level {other:?} (use error|warn|info|debug)")),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static INIT: Once = Once::new();

/// Reads `SNR_LOG` once; unparseable values are ignored (the default
/// stays in effect).
pub(crate) fn init_level_from_env() {
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("SNR_LOG") {
            if let Ok(level) = spec.parse() {
                set_log_level(level);
            }
        }
    });
}

/// The currently active log level.
pub fn log_level() -> Level {
    init_level_from_env();
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Overrides the active log level (takes precedence over `SNR_LOG`).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Writes one log line to stderr if `level` is at or above the active
/// threshold. Called by the logging macros; prefer those.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if level <= log_level() {
        eprintln!("snr[{}] {}", level.as_str(), args);
    }
}

/// Logs at `error` level: `snr_telemetry::error!("bad thing code={}", c)`.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log($crate::Level::Error, format_args!($($arg)*)) };
}

/// Logs at `warn` level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log($crate::Level::Warn, format_args!($($arg)*)) };
}

/// Logs at `info` level.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log($crate::Level::Info, format_args!($($arg)*)) };
}

/// Logs at `debug` level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log($crate::Level::Debug, format_args!($($arg)*)) };
}
