//! Exporters: JSON-lines trace files, Prometheus-style text snapshots, and
//! the human phase-breakdown tree.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::spans;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static TRACE_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Sets the path [`write_trace_if_configured`] will write to.
pub fn set_trace_path(path: PathBuf) {
    *TRACE_PATH.lock().unwrap_or_else(|e| e.into_inner()) = Some(path);
}

/// The configured trace path, if any (`--trace-out` / `SNR_TRACE`).
pub fn trace_path() -> Option<PathBuf> {
    TRACE_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(line: &mut String, key: &str, value: &str) {
    let _ = write!(line, ",\"{key}\":\"");
    escape_json(value, line);
    line.push('"');
}

/// Renders the full trace — meta line, every finished span, every event, and
/// the final counter totals — as JSON lines (one flat object per line).
pub fn render_jsonl() -> String {
    let mut out = String::new();
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":1,\"pid\":{},\"created_unix\":{unix}}}",
        std::process::id()
    );
    for span in spans::finished() {
        let mut line = format!(
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}",
            span.id, span.parent, span.thread, span.start_us, span.dur_us
        );
        push_str_field(&mut line, "name", &span.name);
        push_str_field(&mut line, "fields", &span.fields);
        line.push('}');
        let _ = writeln!(out, "{line}");
    }
    for event in spans::all_events() {
        let mut line =
            format!("{{\"type\":\"event\",\"thread\":{},\"at_us\":{}", event.thread, event.at_us);
        push_str_field(&mut line, "name", &event.name);
        push_str_field(&mut line, "fields", &event.fields);
        line.push('}');
        let _ = writeln!(out, "{line}");
    }
    for &counter in Counter::ALL {
        let value = counter.get();
        if value > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                counter.name()
            );
        }
    }
    out
}

/// Writes the JSONL trace to `path`.
pub fn write_trace(path: &Path) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_jsonl().as_bytes())?;
    file.flush()
}

/// Writes the JSONL trace to the configured path, if one was set. Returns
/// the path written, or `None` when no trace was requested.
pub fn write_trace_if_configured() -> io::Result<Option<PathBuf>> {
    match trace_path() {
        Some(path) => write_trace(&path).map(|()| Some(path)),
        None => Ok(None),
    }
}

/// A point-in-time copy of every metric, ready to render.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Counter totals as `(name, value)`, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values as `(name, value)`.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histograms as `(name, buckets)` where each bucket is
    /// `(upper_bound, count)` and `upper_bound` is exclusive.
    pub histograms: Vec<(&'static str, Vec<(u64, u64)>)>,
}

impl TelemetrySnapshot {
    /// Captures the current totals.
    pub fn capture() -> TelemetrySnapshot {
        let counters = Counter::ALL.iter().map(|&c| (c.name(), c.get())).collect();
        let gauges = Gauge::ALL.iter().map(|&g| (g.name(), g.get())).collect();
        let histograms = Histogram::ALL
            .iter()
            .map(|&h| {
                let buckets = h
                    .buckets()
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, count)| count > 0)
                    .map(|(b, count)| (1u64 << b, count))
                    .collect();
                (h.name(), buckets)
            })
            .collect();
        TelemetrySnapshot { counters, gauges, histograms }
    }

    /// Renders the snapshot in the Prometheus text exposition format, with
    /// every metric prefixed `snr_`. This is the shape the future
    /// `snr-server` `/metrics` endpoint serves.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for &(name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE snr_{name} counter");
            let _ = writeln!(out, "snr_{name} {value}");
        }
        for &(name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE snr_{name} gauge");
            let _ = writeln!(out, "snr_{name} {value}");
        }
        for (name, buckets) in &self.histograms {
            let _ = writeln!(out, "# TYPE snr_{name} histogram");
            let mut cumulative = 0u64;
            for &(le, count) in buckets {
                cumulative += count;
                let _ = writeln!(out, "snr_{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "snr_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "snr_{name}_count {cumulative}");
        }
        out
    }

    /// Renders the finished spans as an indented tree, aggregated by path:
    /// spans with the same name under the same parent path are summed. Spans
    /// absorbed from workers appear as roots tagged with their worker fields.
    pub fn render_tree(&self) -> String {
        struct Node {
            total_us: u64,
            count: u64,
            order: usize,
            children: Vec<String>,
        }
        let records = spans::finished();
        let name_of: HashMap<u64, String> =
            records.iter().map(|r| (r.id, r.name.to_string())).collect();
        let parent_of: HashMap<u64, u64> = records.iter().map(|r| (r.id, r.parent)).collect();
        // Path of a span = ancestor names joined by '/', so repeated phases
        // aggregate into one line per nesting position.
        let path_of = |id: u64| -> String {
            let mut parts = Vec::new();
            let mut cur = id;
            while cur != 0 {
                parts.push(name_of.get(&cur).cloned().unwrap_or_default());
                cur = parent_of.get(&cur).copied().unwrap_or(0);
            }
            parts.reverse();
            parts.join("/")
        };
        // Pass 1: aggregate totals per path. Pass 2: wire child lists, so a
        // child that finishes before its parent still nests correctly.
        let mut nodes: HashMap<String, Node> = HashMap::new();
        for record in &records {
            let path = path_of(record.id);
            let order = record.start_us as usize;
            let node = nodes.entry(path).or_insert_with(|| Node {
                total_us: 0,
                count: 0,
                order,
                children: Vec::new(),
            });
            node.total_us += record.dur_us;
            node.count += 1;
            node.order = node.order.min(order);
        }
        let paths: Vec<String> = nodes.keys().cloned().collect();
        let mut roots: Vec<String> = Vec::new();
        for path in &paths {
            match path.rfind('/') {
                Some(cut) if nodes.contains_key(&path[..cut]) => {
                    nodes.get_mut(&path[..cut]).unwrap().children.push(path.clone());
                }
                _ => roots.push(path.clone()),
            }
        }
        let mut out = String::new();
        fn emit(out: &mut String, nodes: &HashMap<String, Node>, path: &str, depth: usize) {
            let Some(node) = nodes.get(path) else { return };
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "{:indent$}{name}  {:.3}s  ×{}",
                "",
                node.total_us as f64 / 1e6,
                node.count,
                indent = depth * 2
            );
            let mut children = node.children.clone();
            children.sort_by_key(|c| nodes.get(c).map_or(usize::MAX, |n| n.order));
            for child in children {
                emit(out, nodes, &child, depth + 1);
            }
        }
        roots.sort_by_key(|r| nodes.get(r).map_or(usize::MAX, |n| n.order));
        for root in roots {
            emit(&mut out, &nodes, &root, 0);
        }
        out
    }
}
