//! Trace-schema validation: a tiny parser for the flat one-level JSON
//! objects the JSONL exporter emits, plus the line-by-line schema checker
//! used by `telemetry_smoke` in CI.

use std::collections::BTreeMap;

/// A parsed JSON scalar (the trace format never nests).
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    String(String),
    Number(u64),
}

/// A span line from a validated trace.
#[derive(Clone, Debug)]
pub struct SpanLine {
    /// Span name.
    pub name: String,
    /// Rendered `key=value` fields.
    pub fields: String,
    /// Thread id (0 = absorbed from a remote worker).
    pub thread: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// An event line from a validated trace.
#[derive(Clone, Debug)]
pub struct EventLine {
    /// Event name.
    pub name: String,
    /// Rendered `key=value` fields.
    pub fields: String,
}

/// What a validated trace contained, for smoke-test assertions.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Every span line.
    pub spans: Vec<SpanLine>,
    /// Every event line.
    pub events: Vec<EventLine>,
    /// Every counter line as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Number of meta lines (exactly one for a single-process trace).
    pub meta_lines: usize,
}

/// Parses one flat JSON object (string and non-negative integer values
/// only — the trace schema by construction).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let err = |pos: usize, what: &str| format!("byte {pos}: {what}");
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected '\"'"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = line
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(*pos, "bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "invalid codepoint"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "unknown escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let ch = line[*pos..].chars().next().unwrap();
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    };
    let parse_number = |pos: &mut usize| -> Result<u64, String> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == start {
            return Err(err(start, "expected a number"));
        }
        line[start..*pos].parse().map_err(|_| err(start, "number out of range"))
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(err(pos, "expected '{'"));
    }
    pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(&mut pos);
            let key = parse_string(&mut pos)?;
            skip_ws(&mut pos);
            if bytes.get(pos) != Some(&b':') {
                return Err(err(pos, "expected ':'"));
            }
            pos += 1;
            skip_ws(&mut pos);
            let value = match bytes.get(pos) {
                Some(b'"') => Scalar::String(parse_string(&mut pos)?),
                Some(c) if c.is_ascii_digit() => Scalar::Number(parse_number(&mut pos)?),
                _ => return Err(err(pos, "expected a string or non-negative integer")),
            };
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            skip_ws(&mut pos);
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(pos, "expected ',' or '}'")),
            }
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after object"));
    }
    Ok(map)
}

fn get_str(map: &BTreeMap<String, Scalar>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(Scalar::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_num(map: &BTreeMap<String, Scalar>, key: &str) -> Result<u64, String> {
    match map.get(key) {
        Some(Scalar::Number(n)) => Ok(*n),
        Some(_) => Err(format!("field {key:?} must be a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Validates a JSONL trace against the schema the exporter emits. Every
/// non-empty line must be a flat JSON object whose `type` is one of `meta`,
/// `span`, `event`, or `counter`, with the required typed fields present.
/// Returns a [`TraceSummary`] on success, or `Err("line N: ...")`.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parse = |e: String| format!("line {}: {e}", lineno + 1);
        let map = parse_flat_object(line).map_err(parse)?;
        let kind = get_str(&map, "type").map_err(parse)?;
        match kind.as_str() {
            "meta" => {
                get_num(&map, "version").map_err(parse)?;
                get_num(&map, "pid").map_err(parse)?;
                summary.meta_lines += 1;
            }
            "span" => {
                get_num(&map, "id").map_err(parse)?;
                get_num(&map, "parent").map_err(parse)?;
                get_num(&map, "start_us").map_err(parse)?;
                summary.spans.push(SpanLine {
                    name: get_str(&map, "name").map_err(parse)?,
                    fields: get_str(&map, "fields").map_err(parse)?,
                    thread: get_num(&map, "thread").map_err(parse)?,
                    dur_us: get_num(&map, "dur_us").map_err(parse)?,
                });
            }
            "event" => {
                get_num(&map, "at_us").map_err(parse)?;
                get_num(&map, "thread").map_err(parse)?;
                summary.events.push(EventLine {
                    name: get_str(&map, "name").map_err(parse)?,
                    fields: get_str(&map, "fields").map_err(parse)?,
                });
            }
            "counter" => {
                summary.counters.push((
                    get_str(&map, "name").map_err(parse)?,
                    get_num(&map, "value").map_err(parse)?,
                ));
            }
            other => return Err(parse(format!("unknown record type {other:?}"))),
        }
    }
    if summary.meta_lines == 0 && !text.trim().is_empty() {
        return Err("trace has no meta line".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_scalars() {
        let map = parse_flat_object(r#"{"a":"x","b":12,"c":""}"#).unwrap();
        assert_eq!(map.get("a"), Some(&Scalar::String("x".into())));
        assert_eq!(map.get("b"), Some(&Scalar::Number(12)));
        assert_eq!(map.get("c"), Some(&Scalar::String(String::new())));
    }

    #[test]
    fn rejects_nesting_and_junk() {
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_flat_object(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse_flat_object(r#"{"a":-1}"#).is_err());
    }

    #[test]
    fn unescapes_strings() {
        let map = parse_flat_object(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(map.get("s"), Some(&Scalar::String("a\"b\\c\ndA".into())));
    }

    #[test]
    fn validate_requires_a_meta_line() {
        let err = validate_jsonl(r#"{"type":"counter","name":"x","value":1}"#);
        assert!(err.is_err());
        let ok = validate_jsonl(concat!(
            r#"{"type":"meta","version":1,"pid":7,"created_unix":0}"#,
            "\n",
            r#"{"type":"counter","name":"x","value":1}"#,
        ));
        let summary = ok.unwrap();
        assert_eq!(summary.meta_lines, 1);
        assert_eq!(summary.counters, vec![("x".to_string(), 1)]);
    }
}
