//! Span and event recording: RAII guards, the finished-span registry, and
//! the drain cursors used to ship worker telemetry home.

use crate::enabled;
use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A finished span: a named, timed region with a parent link.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id (> 0) within this process.
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Static name, or an owned name for spans absorbed from workers.
    pub name: Cow<'static, str>,
    /// Rendered `key=value` fields, space-separated; may be empty.
    pub fields: String,
    /// Dense per-thread id (0 marks spans absorbed from a remote process).
    pub thread: u64,
    /// Start time in microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A point-in-time event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Static name, or an owned name for events absorbed from workers.
    pub name: Cow<'static, str>,
    /// Rendered `key=value` fields, space-separated; may be empty.
    pub fields: String,
    /// Dense per-thread id (0 marks events absorbed from a remote process).
    pub thread: u64,
    /// Timestamp in microseconds since the process telemetry epoch.
    pub at_us: u64,
}

struct Registry<T> {
    records: Vec<T>,
    drained: usize,
}

impl<T> Registry<T> {
    const fn new() -> Self {
        Registry { records: Vec::new(), drained: 0 }
    }
}

static SPANS: Mutex<Registry<SpanRecord>> = Mutex::new(Registry::new());
static EVENTS: Mutex<Registry<EventRecord>> = Mutex::new(Registry::new());
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    // Current innermost span id (0 = root) and this thread's dense id
    // (0 = unassigned). Const-initialized: no allocation on first touch.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Microseconds since the process telemetry epoch (first telemetry use).
pub(crate) fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// RAII guard for a span; records the span into the registry when dropped.
/// Created via the [`span!`](crate::span) macro.
#[must_use = "a span guard times the region it is alive in; bind it to a variable"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    fields: String,
    start_us: u64,
    start: Instant,
}

impl SpanGuard {
    /// Starts a span with no fields. A no-op when telemetry is disabled.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard::enter_with(name, String::new)
    }

    /// Starts a span, rendering its fields with `fields` — the closure is
    /// only invoked while telemetry is enabled, so the disabled path does
    /// not allocate.
    #[inline]
    pub fn enter_with<F: FnOnce() -> String>(name: &'static str, fields: F) -> SpanGuard {
        if !enabled() {
            return SpanGuard { inner: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(id));
        SpanGuard {
            inner: Some(SpanInner {
                id,
                parent,
                name: Cow::Borrowed(name),
                fields: fields(),
                start_us: now_us(),
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur_us = inner.start.elapsed().as_micros() as u64;
        CURRENT.with(|c| c.set(inner.parent));
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            fields: inner.fields,
            thread: thread_id(),
            start_us: inner.start_us,
            dur_us,
        };
        SPANS.lock().unwrap_or_else(|e| e.into_inner()).records.push(record);
    }
}

/// Records a point event. The `fields` closure is only invoked while
/// telemetry is enabled. Called by the [`event!`](crate::event) macro.
#[inline]
pub fn record_event<F: FnOnce() -> String>(name: &'static str, fields: F) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        name: Cow::Borrowed(name),
        fields: fields(),
        thread: thread_id(),
        at_us: now_us(),
    };
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).records.push(record);
}

fn join_fields(fields: &str, extra: &str) -> String {
    match (fields.is_empty(), extra.is_empty()) {
        (true, _) => extra.to_string(),
        (_, true) => fields.to_string(),
        _ => format!("{fields} {extra}"),
    }
}

/// Records a span absorbed from a remote process, tagging it with `extra`
/// (e.g. `"worker=1 gen=0"`). Remote spans are roots with thread id 0; their
/// `start_us` is in the remote process's own clock.
pub fn record_remote_span(name: &str, fields: &str, extra: &str, start_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    let record = SpanRecord {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: 0,
        name: Cow::Owned(name.to_string()),
        fields: join_fields(fields, extra),
        thread: 0,
        start_us,
        dur_us,
    };
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).records.push(record);
}

/// Records an event absorbed from a remote process, tagging it with `extra`.
pub fn record_remote_event(name: &str, fields: &str, extra: &str, at_us: u64) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        name: Cow::Owned(name.to_string()),
        fields: join_fields(fields, extra),
        thread: 0,
        at_us,
    };
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).records.push(record);
}

/// Clones every finished span (drained or not), in finish order.
pub(crate) fn finished() -> Vec<SpanRecord> {
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).records.clone()
}

/// Clones every recorded event (drained or not), in record order.
pub(crate) fn all_events() -> Vec<EventRecord> {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).records.clone()
}

pub(crate) fn drain_spans() -> Vec<(String, String, u64, u64)> {
    let mut reg = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    let from = reg.drained;
    reg.drained = reg.records.len();
    reg.records[from..]
        .iter()
        .map(|r| (r.name.to_string(), r.fields.clone(), r.start_us, r.dur_us))
        .collect()
}

pub(crate) fn drain_events() -> Vec<(String, String, u64)> {
    let mut reg = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    let from = reg.drained;
    reg.drained = reg.records.len();
    reg.records[from..].iter().map(|r| (r.name.to_string(), r.fields.clone(), r.at_us)).collect()
}

pub(crate) fn reset() {
    let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    spans.records.clear();
    spans.drained = 0;
    drop(spans);
    let mut events = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    events.records.clear();
    events.drained = 0;
}
