//! Typed counters, gauges, and log₂-bucket histograms.
//!
//! Each metric is a fixed enum variant backed by a static atomic, so hot
//! loops pay one `Relaxed` load (the enabled check) plus one atomic update —
//! and nothing at all when telemetry is disabled.

use crate::enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $vis:vis enum $ty:ident { $($(#[$vdoc:meta])* $variant:ident => $name:literal),+ $(,)? }) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        $vis enum $ty {
            $($(#[$vdoc])* $variant),+
        }

        impl $ty {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$ty] = &[$($ty::$variant),+];

            /// The stable snake_case export name.
            pub fn name(self) -> &'static str {
                match self {
                    $($ty::$variant => $name),+
                }
            }

            /// Reverse lookup by export name (used when absorbing remote
            /// deltas); unknown names return `None`.
            pub fn from_name(name: &str) -> Option<$ty> {
                match name {
                    $($name => Some($ty::$variant),)+
                    _ => None,
                }
            }

            fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotonic counters. Saturating: they stick at `u64::MAX` rather than
    /// wrapping.
    pub enum Counter {
        /// Candidate pairs scored across all phases.
        ScoredPairs => "scored_pairs",
        /// Links added to the linking by mutual-best selection.
        LinksInserted => "links_inserted",
        /// Bytes moved through the MapReduce shuffle.
        ShuffleBytes => "shuffle_bytes",
        /// Records moved through the MapReduce shuffle.
        ShuffleRecords => "shuffle_records",
        /// MapReduce rounds executed.
        EngineRounds => "engine_rounds",
        /// Candidate pairs proposed by LSH banding.
        LshProposals => "lsh_proposals",
        /// Phases where the adaptive gate chose the sketch path.
        LshGateSketch => "lsh_gate_sketch",
        /// Phases where the adaptive gate fell back to the exact scan.
        LshGateExact => "lsh_gate_exact",
        /// Microseconds spent building candidate/link caches.
        CacheBuildMicros => "cache_build_micros",
        /// Bytes written to driver checkpoints.
        CheckpointBytes => "checkpoint_bytes",
        /// Checkpoints successfully written by the driver.
        Checkpoints => "checkpoints",
        /// Worker respawns performed by the driver.
        Respawns => "respawns",
        /// Driver tasks completed (locally or by workers).
        TasksCompleted => "tasks_completed",
        /// Tasks the driver scored in-process after losing its worker pool.
        DegradedTasks => "degraded_tasks",
        /// Injected faults that actually fired.
        FaultsFired => "faults_fired",
        /// Post-combine shuffle bytes flushed to spill run files.
        SpilledBytes => "spilled_bytes",
        /// Spill run files written by the MapReduce engine.
        SpilledRuns => "spilled_runs",
    }
}

metric_enum! {
    /// Last-write-wins gauges.
    pub enum Gauge {
        /// Live worker processes in the driver pool.
        WorkersAlive => "workers_alive",
        /// Total links in the linking after the most recent phase.
        LinksTotal => "links_total",
    }
}

metric_enum! {
    /// Log₂-bucket histograms: a value `v` lands in bucket
    /// `ceil(log2(v + 1))`, so bucket `b` covers `[2^(b-1), 2^b)`.
    pub enum Histogram {
        /// Per-task wall time on driver workers, microseconds.
        TaskMicros => "task_micros",
        /// Per-phase wall time in the matcher, microseconds.
        PhaseMicros => "phase_micros",
        /// Per-round wall time in the MapReduce engine, microseconds.
        RoundMicros => "round_micros",
    }
}

const COUNTERS: usize = Counter::ALL.len();
const GAUGES: usize = Gauge::ALL.len();
const HISTOGRAMS: usize = Histogram::ALL.len();
/// Buckets 0..=47 cover durations up to ~2^47 µs (≈ 4.5 years).
pub(crate) const HIST_BUCKETS: usize = 48;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];

static COUNTER_CELLS: [AtomicU64; COUNTERS] = [ZERO; COUNTERS];
static GAUGE_CELLS: [AtomicU64; GAUGES] = [ZERO; GAUGES];
static HIST_CELLS: [[AtomicU64; HIST_BUCKETS]; HISTOGRAMS] = [ZERO_ROW; HISTOGRAMS];
// Counter values at the previous drain, for delta shipping.
static DRAINED: Mutex<[u64; COUNTERS]> = Mutex::new([0; COUNTERS]);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`. A no-op while telemetry is
    /// disabled.
    #[inline]
    pub fn add(self, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        let cell = &COUNTER_CELLS[self.index()];
        let _ =
            cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
    }

    /// The current total.
    pub fn get(self) -> u64 {
        COUNTER_CELLS[self.index()].load(Ordering::Relaxed)
    }
}

impl Gauge {
    /// Sets the gauge. A no-op while telemetry is disabled.
    #[inline]
    pub fn set(self, value: u64) {
        if !enabled() {
            return;
        }
        GAUGE_CELLS[self.index()].store(value, Ordering::Relaxed);
    }

    /// The most recently set value.
    pub fn get(self) -> u64 {
        GAUGE_CELLS[self.index()].load(Ordering::Relaxed)
    }
}

impl Histogram {
    /// Records one observation. A no-op while telemetry is disabled.
    #[inline]
    pub fn record(self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = (u64::BITS - value.leading_zeros()).min(HIST_BUCKETS as u32 - 1);
        HIST_CELLS[self.index()][bucket as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket observation counts, index = `ceil(log2(v + 1))`.
    pub fn buckets(self) -> Vec<u64> {
        HIST_CELLS[self.index()].iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

/// Counter increments since the previous drain, skipping zero deltas.
pub(crate) fn drain_counters() -> Vec<(String, u64)> {
    let mut last = DRAINED.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for (i, &c) in Counter::ALL.iter().enumerate() {
        let now = c.get();
        let delta = now.saturating_sub(last[i]);
        if delta > 0 {
            out.push((c.name().to_string(), delta));
        }
        last[i] = now;
    }
    out
}

pub(crate) fn reset() {
    for cell in &COUNTER_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &GAUGE_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for hist in &HIST_CELLS {
        for cell in hist {
            cell.store(0, Ordering::Relaxed);
        }
    }
    *DRAINED.lock().unwrap_or_else(|e| e.into_inner()) = [0; COUNTERS];
}
