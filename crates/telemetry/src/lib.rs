//! Runtime observability for the reconciliation workspace.
//!
//! The crate provides four things, all behind a single global on/off switch
//! so that instrumented hot loops cost (almost) nothing when telemetry is
//! disabled:
//!
//! 1. **Spans** — hierarchical RAII timing guards ([`span!`]) with
//!    thread-safe parent/child nesting and monotonic timestamps.
//! 2. **Metrics** — typed [`Counter`]s, [`Gauge`]s, and log₂-bucket
//!    [`Histogram`]s that are registered once and cheap to bump.
//! 3. **Exporters** — a JSON-lines trace file ([`write_trace`]), a
//!    Prometheus-style text snapshot ([`TelemetrySnapshot::render_prometheus`]),
//!    and a human phase-breakdown tree ([`TelemetrySnapshot::render_tree`]).
//! 4. **Logger** — leveled `key=value` logging to stderr ([`error!`],
//!    [`warn!`], [`info!`], [`debug!`]) controlled by `SNR_LOG`, independent
//!    of the trace switch.
//!
//! Remote processes (the shard-driver workers) collect telemetry locally and
//! ship deltas home with [`drain_delta`]; the coordinator folds them into its
//! own registry with [`absorb_delta`] without affecting scheduling.
//!
//! Environment variables, honored by [`init_from_env`]:
//!
//! | variable        | effect                                             |
//! |-----------------|----------------------------------------------------|
//! | `SNR_TRACE`     | enable telemetry and write a JSONL trace here      |
//! | `SNR_TELEMETRY` | `1` enables collection without a trace file        |
//! | `SNR_LOG`       | `error`, `warn`, `info` (default), or `debug`      |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod logger;
mod metrics;
mod schema;
mod spans;

pub use export::{
    set_trace_path, trace_path, write_trace, write_trace_if_configured, TelemetrySnapshot,
};
pub use logger::{log, log_level, set_log_level, Level};
pub use metrics::{Counter, Gauge, Histogram};
pub use schema::{validate_jsonl, TraceSummary};
pub use spans::{
    record_event, record_remote_event, record_remote_span, EventRecord, SpanGuard, SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on. Spans, counters, and events recorded while
/// enabled are kept until [`reset`].
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off. Already-recorded data is kept.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every recorded span, event, counter, gauge, and histogram.
/// Intended for tests and for long-lived processes that export periodically.
pub fn reset() {
    spans::reset();
    metrics::reset();
}

/// Reads `SNR_TRACE`, `SNR_TELEMETRY`, and `SNR_LOG` and configures the
/// global state accordingly. Safe to call more than once.
pub fn init_from_env() {
    if let Ok(path) = std::env::var("SNR_TRACE") {
        if !path.is_empty() {
            set_trace_path(std::path::PathBuf::from(path));
            enable();
        }
    }
    if std::env::var("SNR_TELEMETRY").is_ok_and(|v| v == "1") {
        enable();
    }
    logger::init_level_from_env();
}

/// A telemetry delta: everything recorded since the previous drain, in a
/// plain-data form a worker can ship over the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Finished spans as `(name, fields, start_us, dur_us)`.
    pub spans: Vec<(String, String, u64, u64)>,
    /// Counter increments since the last drain as `(name, delta)`.
    pub counters: Vec<(String, u64)>,
    /// Point events as `(name, fields, at_us)`.
    pub events: Vec<(String, String, u64)>,
}

impl StatsDelta {
    /// Whether the delta carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.events.is_empty()
    }
}

/// Drains everything recorded since the previous drain. Drained data stays in
/// the local registry (exports still see it); only the drain cursor advances.
pub fn drain_delta() -> StatsDelta {
    StatsDelta {
        spans: spans::drain_spans(),
        counters: metrics::drain_counters(),
        events: spans::drain_events(),
    }
}

/// Folds a delta shipped from a remote process into the local registry,
/// tagging each span and event with `extra` (e.g. `"worker=1 gen=0"`).
/// Observe-only: nothing about scheduling or matching reads this data back.
pub fn absorb_delta(delta: &StatsDelta, extra: &str) {
    if !enabled() {
        return;
    }
    for (name, fields, start_us, dur_us) in &delta.spans {
        record_remote_span(name, fields, extra, *start_us, *dur_us);
    }
    for (name, value) in &delta.counters {
        if let Some(c) = Counter::from_name(name) {
            c.add(*value);
        }
    }
    for (name, fields, at_us) in &delta.events {
        record_remote_event(name, fields, extra, *at_us);
    }
}

/// Starts a timed span; the returned guard records the span when dropped.
///
/// `span!("name")` or `span!("name", key = value, ...)`. Field expressions
/// are only evaluated while telemetry is enabled, so they must be free of
/// side effects.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::SpanGuard::enter_with($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(concat!(stringify!($k), "="));
                s.push_str(&format!("{}", $v));
            )+
            s
        })
    };
}

/// Records a point-in-time event. Same shape as [`span!`]; field expressions
/// are only evaluated while telemetry is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::record_event($name, || String::new())
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::record_event($name, || {
            let mut s = String::new();
            $(
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(concat!(stringify!($k), "="));
                s.push_str(&format!("{}", $v));
            )+
            s
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // Telemetry state is process-global; tests that flip it run serialized.
    static LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        disable();
        guard
    }

    #[test]
    fn spans_nest_within_a_thread() {
        let _l = serial();
        enable();
        {
            let _outer = span!("outer");
            {
                let _inner = span!("inner", depth = 2);
            }
        }
        let d = drain_delta();
        assert_eq!(d.spans.len(), 2);
        // Inner finishes first.
        assert_eq!(d.spans[0].0, "inner");
        assert_eq!(d.spans[0].1, "depth=2");
        assert_eq!(d.spans[1].0, "outer");
        let records = spans::finished();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.parent, outer.id, "inner must nest under outer");
        assert_eq!(outer.parent, 0, "outer is a root span");
    }

    #[test]
    fn spans_on_different_threads_do_not_share_parents() {
        let _l = serial();
        enable();
        let _root = span!("root");
        let handle = std::thread::spawn(|| {
            let _other = span!("other-thread");
        });
        handle.join().unwrap();
        let records = spans::finished();
        let other = records.iter().find(|r| r.name == "other-thread").unwrap();
        assert_eq!(other.parent, 0, "a fresh thread starts at the root");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = serial();
        {
            let _g = span!("ghost", x = 1);
            event!("ghost-event");
            Counter::ScoredPairs.add(10);
        }
        assert!(drain_delta().is_empty());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let _l = serial();
        enable();
        Counter::ScoredPairs.add(u64::MAX);
        Counter::ScoredPairs.add(u64::MAX);
        Counter::ScoredPairs.add(1);
        assert_eq!(Counter::ScoredPairs.get(), u64::MAX);
    }

    #[test]
    fn drain_reports_deltas_not_totals() {
        let _l = serial();
        enable();
        Counter::LinksInserted.add(5);
        let first = drain_delta();
        assert_eq!(first.counters, vec![("links_inserted".to_string(), 5)]);
        Counter::LinksInserted.add(2);
        let second = drain_delta();
        assert_eq!(second.counters, vec![("links_inserted".to_string(), 2)]);
        assert!(drain_delta().counters.is_empty());
        assert_eq!(Counter::LinksInserted.get(), 7, "totals survive draining");
    }

    #[test]
    fn absorb_delta_tags_spans_with_worker_fields() {
        let _l = serial();
        enable();
        let delta = StatsDelta {
            spans: vec![("task".into(), "phase=3".into(), 10, 20)],
            counters: vec![("scored_pairs".into(), 7)],
            events: vec![("fault_fired".into(), "action=kill".into(), 11)],
        };
        absorb_delta(&delta, "worker=1 gen=0");
        let d = drain_delta();
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans[0].0, "task");
        assert_eq!(d.spans[0].1, "phase=3 worker=1 gen=0");
        assert_eq!(d.events[0].1, "action=kill worker=1 gen=0");
        assert_eq!(Counter::ScoredPairs.get(), 7);
    }

    #[test]
    fn unknown_remote_counters_are_ignored() {
        let _l = serial();
        enable();
        let delta =
            StatsDelta { counters: vec![("from_the_future".into(), 9)], ..StatsDelta::default() };
        absorb_delta(&delta, "worker=0 gen=0");
        assert!(drain_delta().counters.is_empty());
    }

    #[test]
    fn events_carry_fields_and_timestamps() {
        let _l = serial();
        enable();
        event!("checkpoint", phase = 2, bytes = 4096);
        let d = drain_delta();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].0, "checkpoint");
        assert_eq!(d.events[0].1, "phase=2 bytes=4096");
    }

    #[test]
    fn histograms_bucket_by_log2() {
        let _l = serial();
        enable();
        Histogram::TaskMicros.record(1);
        Histogram::TaskMicros.record(1000);
        Histogram::TaskMicros.record(1_000_000);
        let snap = TelemetrySnapshot::capture();
        let total: u64 = snap
            .histograms
            .iter()
            .find(|(name, _)| *name == "task_micros")
            .map(|(_, buckets)| buckets.iter().map(|&(_, c)| c).sum())
            .unwrap();
        assert_eq!(total, 3);
    }

    #[test]
    fn prometheus_render_lists_every_counter_once() {
        let _l = serial();
        enable();
        Counter::Respawns.add(2);
        Gauge::WorkersAlive.set(4);
        let text = TelemetrySnapshot::capture().render_prometheus();
        assert!(text.contains("snr_respawns 2"), "{text}");
        assert!(text.contains("snr_workers_alive 4"), "{text}");
        assert!(text.contains("# TYPE snr_respawns counter"));
        assert!(text.contains("# TYPE snr_workers_alive gauge"));
    }

    #[test]
    fn tree_render_nests_children_under_parents() {
        let _l = serial();
        enable();
        {
            let _p = span!("phase");
            let _c = span!("score");
        }
        let tree = TelemetrySnapshot::capture().render_tree();
        let phase_at = tree.find("phase").unwrap();
        let score_at = tree.find("score").unwrap();
        assert!(phase_at < score_at, "parent listed before child:\n{tree}");
        assert!(tree.lines().any(|l| l.trim_start().starts_with("score") && l.starts_with("  ")));
    }

    #[test]
    fn jsonl_trace_round_trips_through_the_validator() {
        let _l = serial();
        enable();
        {
            let _g = span!("phase", iter = 1, bucket = 3);
            event!("lsh_gate", verdict = "sketch");
        }
        Counter::ScoredPairs.add(42);
        let dir = std::env::temp_dir().join("snr-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
        write_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        assert!(summary.spans.iter().any(|s| s.name == "phase" && s.fields == "iter=1 bucket=3"));
        assert!(summary.events.iter().any(|e| e.name == "lsh_gate"));
        assert!(summary
            .counters
            .iter()
            .any(|(name, value)| name == "scored_pairs" && *value == 42));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        let _l = serial();
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_jsonl(r#"{"type":"span"}"#).is_err(), "span without fields");
        assert!(validate_jsonl(r#"{"type":"mystery","name":"x"}"#).is_err());
        assert!(
            validate_jsonl(r#"{"type":"counter","name":"x","value":3}"#).is_err(),
            "a trace without a meta line is rejected"
        );
        let with_meta = concat!(
            r#"{"type":"meta","version":1,"pid":1,"created_unix":0}"#,
            "\n",
            r#"{"type":"counter","name":"x","value":3}"#,
        );
        assert!(validate_jsonl(with_meta).is_ok());
    }

    #[test]
    fn strings_are_escaped_in_the_trace() {
        let _l = serial();
        enable();
        event!("weird", path = "a\"b\\c\n");
        let dir = std::env::temp_dir().join("snr-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("escape-{}.jsonl", std::process::id()));
        write_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        let ev = summary.events.iter().find(|e| e.name == "weird").unwrap();
        assert_eq!(ev.fields, "path=a\"b\\c\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_level_parses_and_orders() {
        let _l = serial();
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert!("loud".parse::<Level>().is_err());
        let prev = log_level();
        set_log_level(Level::Error);
        assert_eq!(log_level(), Level::Error);
        set_log_level(prev);
    }
}
