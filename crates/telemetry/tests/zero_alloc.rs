//! Pins the "telemetry is free when off" contract: with the global
//! subscriber disabled, spans, events, and counter bumps must perform zero
//! heap allocations. This test gets its own binary (see Cargo.toml) so the
//! counting allocator sees no interference from other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_adds_zero_allocations() {
    snr_telemetry::disable();
    assert!(!snr_telemetry::enabled());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _span = snr_telemetry::span!("phase", iter = i, bucket = i % 7);
        let _inner = snr_telemetry::span!("score");
        snr_telemetry::Counter::ScoredPairs.add(i);
        snr_telemetry::Counter::LinksInserted.add(1);
        snr_telemetry::Gauge::LinksTotal.set(i);
        snr_telemetry::Histogram::PhaseMicros.record(i);
        snr_telemetry::event!("lsh_gate", verdict = "sketch", mass = i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate (got {} allocations)",
        after - before
    );
}
