//! Unified, deterministic fault-injection registry for the shard driver.
//!
//! Every recovery path in `snr-driver` — worker respawn, checkpoint/resume,
//! in-process degradation — is only trustworthy if the failures that trigger
//! it can be produced on demand, deterministically, in tests and smoke runs.
//! This crate replaces the ad-hoc `SNR_DRIVER_FAULT=kill_worker:<round>`
//! string with a seeded registry of named fault *sites* that both the
//! coordinator and the worker binary consult at well-defined points.
//!
//! # Spec grammar
//!
//! A spec is a comma-separated list of actions (whitespace around commas is
//! ignored), carried in the `SNR_FAULT` environment variable or
//! `DriverConfig::fault`:
//!
//! ```text
//! spec          := action ("," action)*
//! action        := worker-fault | coord-fault | "seed:" u64 | legacy
//! worker-fault  := ("kill" | "error_frame" | "corrupt_frame"
//!                    | "truncate_frame" | "respawn_fail") ":" wsel
//!                | "stall" ":" wsel ":" millis ["ms"]
//! wsel          := "w" u32 [ "@" ("round" | "phase") u32 ]
//! coord-fault   := ("checkpoint_io" | "halt") "@" ("round" | "phase") u32
//!                | ("spill_io" | "spill_corrupt") [ "@" ("round" | "phase") u32 ]
//! legacy        := "kill_worker:" u32      (alias for kill:w0@round<N>)
//!                | "stall_worker:" u64     (alias for stall:w0:<MS>)
//! ```
//!
//! Examples: `kill:w1@round2`, `corrupt_frame:w0@round1`,
//! `stall:w2@round3:500ms`, `checkpoint_io@phase2,halt@phase3`,
//! `seed:42,truncate_frame:w1@round1`, `spill_io@round2`, `spill_corrupt`.
//!
//! # Semantics
//!
//! - An action without a round selector matches any round; one without a
//!   worker selector (coordinator sites only) matches any worker query.
//! - Every site fires **at most once** per registry, except [`FaultSite::Stall`],
//!   which stalls every matching task (matching the legacy behavior that
//!   fault-tolerance tests rely on).
//! - The seed (default [`DEFAULT_SEED`]) feeds [`splitmix64`] so corruption
//!   faults flip the same byte on every run.
//! - [`FaultRegistry::worker_spec`] re-serializes the subset of actions a
//!   given worker index should see, which is how the coordinator scopes the
//!   registry per subprocess — and how a *respawned* worker comes back
//!   healthy: only actions targeting a strictly later round survive the
//!   filter, so a crash fault does not re-kill the replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;

/// Primary environment variable carrying a fault spec.
pub const ENV_FAULT: &str = "SNR_FAULT";
/// Legacy environment variable (PR 6 spelling), still honored.
pub const ENV_FAULT_LEGACY: &str = "SNR_DRIVER_FAULT";
/// Seed used when the spec does not carry a `seed:<n>` action.
pub const DEFAULT_SEED: u64 = 0x5EED_5EED;

/// A named point in the driver or worker where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Worker: die with `exit(17)` on the first task of the matching round.
    Kill,
    /// Worker: sleep before answering each matching task.
    Stall,
    /// Worker: report a fatal `WorkerError` frame instead of scoring.
    ErrorFrame,
    /// Worker: corrupt the serialized claims of one `TaskDone` frame.
    CorruptFrame,
    /// Worker: truncate one `TaskDone` frame mid-body and exit.
    TruncateFrame,
    /// Coordinator: fail the exec of one respawn attempt.
    RespawnFail,
    /// Coordinator: fail one checkpoint write with an I/O error.
    CheckpointIo,
    /// Coordinator: abort the run after the matching phase completes (and
    /// checkpoints), simulating a coordinator crash between phases.
    Halt,
    /// Engine: fail one spill run-file write/flush with an I/O error while
    /// the MapReduce shuffle is spilling to disk.
    SpillIo,
    /// Engine: byte-flip one spill run file after the map phase writes it
    /// and before the reduce merge reads it back.
    SpillCorrupt,
}

impl FaultSite {
    fn name(self) -> &'static str {
        match self {
            FaultSite::Kill => "kill",
            FaultSite::Stall => "stall",
            FaultSite::ErrorFrame => "error_frame",
            FaultSite::CorruptFrame => "corrupt_frame",
            FaultSite::TruncateFrame => "truncate_frame",
            FaultSite::RespawnFail => "respawn_fail",
            FaultSite::CheckpointIo => "checkpoint_io",
            FaultSite::Halt => "halt",
            FaultSite::SpillIo => "spill_io",
            FaultSite::SpillCorrupt => "spill_corrupt",
        }
    }

    /// The selector keyword [`FaultAction::to_spec`] prints for this site.
    /// Worker and spill sites count engine *rounds*; the coordinator sites
    /// count driver *phases*. [`parse_round`] accepts either spelling.
    fn selector_keyword(self) -> &'static str {
        match self {
            FaultSite::CheckpointIo | FaultSite::Halt | FaultSite::RespawnFail => "phase",
            _ => "round",
        }
    }

    /// Whether this site is evaluated inside a worker subprocess (and so
    /// travels through [`FaultRegistry::worker_spec`]).
    pub fn is_worker_site(self) -> bool {
        matches!(
            self,
            FaultSite::Kill
                | FaultSite::Stall
                | FaultSite::ErrorFrame
                | FaultSite::CorruptFrame
                | FaultSite::TruncateFrame
        )
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed action: a site plus its selectors.
#[derive(Debug)]
pub struct FaultAction {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Worker index selector (`None` matches any worker query).
    pub worker: Option<u32>,
    /// Round/phase selector (`None` matches any round query).
    pub round: Option<u32>,
    /// Stall duration in milliseconds (stall actions only).
    pub millis: Option<u64>,
    fired: Cell<bool>,
}

impl FaultAction {
    fn matches(&self, site: FaultSite, worker: Option<u32>, round: Option<u32>) -> bool {
        self.site == site
            && self.worker.is_none_or(|aw| worker == Some(aw))
            && self.round.is_none_or(|ar| round == Some(ar))
    }

    /// Re-serializes the action in canonical spec grammar.
    pub fn to_spec(&self) -> String {
        let mut s = self.site.name().to_string();
        if let Some(w) = self.worker {
            s.push_str(&format!(":w{w}"));
        }
        if let Some(r) = self.round {
            s.push_str(&format!("@{}{r}", self.site.selector_keyword()));
        }
        if let Some(ms) = self.millis {
            s.push_str(&format!(":{ms}"));
        }
        s
    }
}

/// What a fired fault asks the caller to do.
#[derive(Clone, Copy, Debug)]
pub struct FaultHit {
    /// The site that fired.
    pub site: FaultSite,
    /// Stall duration in milliseconds (0 for non-stall sites).
    pub millis: u64,
}

/// A parsed, seeded set of fault actions.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    seed: Option<u64>,
    actions: Vec<FaultAction>,
}

impl FaultRegistry {
    /// A registry with no actions: every [`FaultRegistry::fire`] misses.
    pub fn empty() -> Self {
        FaultRegistry::default()
    }

    /// Parses a spec string. Empty and all-whitespace specs yield an empty
    /// registry; any unparseable action is an error naming the action.
    pub fn parse(spec: &str) -> Result<FaultRegistry, String> {
        let mut reg = FaultRegistry::default();
        for raw in spec.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                if spec.trim().is_empty() {
                    continue;
                }
                return Err(format!("empty action in fault spec {spec:?}"));
            }
            reg.parse_action(item)?;
        }
        Ok(reg)
    }

    /// Reads the spec from [`ENV_FAULT`], falling back to
    /// [`ENV_FAULT_LEGACY`]. A malformed value is reported on stderr and
    /// treated as empty (a worker must never crash on its environment).
    pub fn from_env() -> FaultRegistry {
        let spec = std::env::var(ENV_FAULT)
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var(ENV_FAULT_LEGACY).ok().filter(|s| !s.is_empty()));
        match spec {
            None => FaultRegistry::empty(),
            Some(s) => FaultRegistry::parse(&s).unwrap_or_else(|e| {
                snr_telemetry::warn!("ignoring unparseable fault spec: {e}");
                FaultRegistry::empty()
            }),
        }
    }

    fn parse_action(&mut self, item: &str) -> Result<(), String> {
        // Coordinator sites attach their selector to the site name itself:
        // `halt@phase2` has no ':' segments at all.
        let segments: Vec<&str> = item.split(':').collect();
        let (site_name, at) = match segments[0].split_once('@') {
            Some((s, at)) => (s, Some(at)),
            None => (segments[0], None),
        };
        let err = |why: &str| Err(format!("bad fault action {item:?}: {why}"));
        match (site_name, at, segments.len()) {
            ("seed", None, 2) => {
                let n = segments[1].parse().map_err(|_| format!("bad seed in {item:?}"))?;
                self.seed = Some(n);
            }
            ("kill_worker", None, 2) => {
                let round = segments[1].parse().map_err(|_| format!("bad round in {item:?}"))?;
                self.push(FaultSite::Kill, Some(0), Some(round), None);
            }
            ("stall_worker", None, 2) => {
                let ms = segments[1].parse().map_err(|_| format!("bad millis in {item:?}"))?;
                self.push(FaultSite::Stall, Some(0), None, Some(ms));
            }
            ("checkpoint_io" | "halt", Some(at), 1) => {
                let site =
                    if site_name == "halt" { FaultSite::Halt } else { FaultSite::CheckpointIo };
                self.push(site, None, Some(parse_round(at, item)?), None);
            }
            // Spill sites take no worker selector and an *optional* round:
            // a bare `spill_io` faults the first spill of the run.
            ("spill_io" | "spill_corrupt", at, 1) => {
                let site = if site_name == "spill_io" {
                    FaultSite::SpillIo
                } else {
                    FaultSite::SpillCorrupt
                };
                let round = at.map(|a| parse_round(a, item)).transpose()?;
                self.push(site, None, round, None);
            }
            ("spill_io" | "spill_corrupt", _, _) => {
                return err("expected `spill_io[@round<R>]` (no worker selector)");
            }
            (
                "kill" | "error_frame" | "corrupt_frame" | "truncate_frame" | "respawn_fail",
                None,
                2,
            ) => {
                let site = match site_name {
                    "kill" => FaultSite::Kill,
                    "error_frame" => FaultSite::ErrorFrame,
                    "corrupt_frame" => FaultSite::CorruptFrame,
                    "truncate_frame" => FaultSite::TruncateFrame,
                    _ => FaultSite::RespawnFail,
                };
                let (w, r) = parse_wsel(segments[1], item)?;
                self.push(site, Some(w), r, None);
            }
            ("stall", None, 3) => {
                let (w, r) = parse_wsel(segments[1], item)?;
                let ms_str = segments[2].strip_suffix("ms").unwrap_or(segments[2]);
                let ms = ms_str.parse().map_err(|_| format!("bad millis in {item:?}"))?;
                self.push(FaultSite::Stall, Some(w), r, Some(ms));
            }
            (
                "kill" | "error_frame" | "corrupt_frame" | "truncate_frame" | "respawn_fail",
                None,
                _,
            ) => {
                return err("expected one `:w<N>[@round<R>]` selector");
            }
            ("stall", None, _) => return err("expected `stall:w<N>[@round<R>]:<MS>`"),
            _ => return err("unknown fault site"),
        }
        Ok(())
    }

    fn push(
        &mut self,
        site: FaultSite,
        worker: Option<u32>,
        round: Option<u32>,
        millis: Option<u64>,
    ) {
        self.actions.push(FaultAction { site, worker, round, millis, fired: Cell::new(false) });
    }

    /// Whether the registry holds no actions at all.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The corruption seed (spec `seed:<n>` or [`DEFAULT_SEED`]).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// The parsed actions, in spec order.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// Consults the registry at one site. Returns the first matching action
    /// as a [`FaultHit`] and arms its fire-once latch ([`FaultSite::Stall`]
    /// keeps firing — a straggler straggles on every task).
    pub fn fire(
        &self,
        site: FaultSite,
        worker: Option<u32>,
        round: Option<u32>,
    ) -> Option<FaultHit> {
        for a in &self.actions {
            if a.fired.get() || !a.matches(site, worker, round) {
                continue;
            }
            if a.site != FaultSite::Stall {
                a.fired.set(true);
            }
            snr_telemetry::Counter::FaultsFired.add(1);
            snr_telemetry::event!(
                "fault_fired",
                site = a.site.name(),
                worker = worker.map_or_else(|| "any".to_string(), |w| w.to_string()),
                round = round.map_or_else(|| "any".to_string(), |r| r.to_string()),
            );
            return Some(FaultHit { site: a.site, millis: a.millis.unwrap_or(0) });
        }
        None
    }

    /// Re-serializes the worker-site actions targeting worker `worker`
    /// (with the seed, so corruption stays deterministic). When
    /// `after_round` is set — a respawn during that round — only actions
    /// pinned to a strictly later round are kept: round-less actions and
    /// the fault that just killed the first incarnation stay behind, so the
    /// replacement process comes up healthy. Returns `None` when nothing
    /// applies.
    pub fn worker_spec(&self, worker: u32, after_round: Option<u32>) -> Option<String> {
        let mut parts: Vec<String> = Vec::new();
        for a in &self.actions {
            if !a.site.is_worker_site() || a.worker != Some(worker) {
                continue;
            }
            if let Some(cut) = after_round {
                match a.round {
                    Some(r) if r > cut => {}
                    _ => continue,
                }
            }
            parts.push(a.to_spec());
        }
        if parts.is_empty() {
            return None;
        }
        if let Some(seed) = self.seed {
            parts.insert(0, format!("seed:{seed}"));
        }
        Some(parts.join(","))
    }
}

fn parse_wsel(token: &str, item: &str) -> Result<(u32, Option<u32>), String> {
    let (wtok, round) = match token.split_once('@') {
        Some((w, at)) => (w, Some(parse_round(at, item)?)),
        None => (token, None),
    };
    let w = wtok
        .strip_prefix('w')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad worker selector {wtok:?} in {item:?} (expected w<N>)"))?;
    Ok((w, round))
}

fn parse_round(at: &str, item: &str) -> Result<u32, String> {
    at.strip_prefix("round")
        .or_else(|| at.strip_prefix("phase"))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| {
            format!("bad round selector {at:?} in {item:?} (expected round<R> or phase<R>)")
        })
}

/// SplitMix64: the deterministic byte-picker behind corruption faults.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically corrupts a payload in place: XORs one seed-chosen byte
/// and drops the final byte. The truncation guarantees that any
/// length-validated decoder (e.g. `SinkClaims::decode`) rejects the payload
/// regardless of which byte the XOR landed on.
pub fn corrupt_payload(bytes: &mut Vec<u8>, seed: u64) {
    if bytes.is_empty() {
        return;
    }
    let i = (splitmix64(seed ^ bytes.len() as u64) % bytes.len() as u64) as usize;
    bytes[i] ^= 0x5A;
    bytes.pop();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_spec_parses_and_fires_once() {
        let reg = FaultRegistry::parse("kill:w1@round2,corrupt_frame:w0@round1,seed:7").unwrap();
        assert_eq!(reg.seed(), 7);
        assert_eq!(reg.actions().len(), 2);
        // Wrong worker / wrong round miss.
        assert!(reg.fire(FaultSite::Kill, Some(0), Some(2)).is_none());
        assert!(reg.fire(FaultSite::Kill, Some(1), Some(1)).is_none());
        // Exact match fires exactly once.
        assert!(reg.fire(FaultSite::Kill, Some(1), Some(2)).is_some());
        assert!(reg.fire(FaultSite::Kill, Some(1), Some(2)).is_none());
        assert!(reg.fire(FaultSite::CorruptFrame, Some(0), Some(1)).is_some());
    }

    #[test]
    fn stall_fires_every_matching_task() {
        let reg = FaultRegistry::parse("stall:w2:250ms").unwrap();
        for round in 1..4 {
            let hit = reg.fire(FaultSite::Stall, Some(2), Some(round)).unwrap();
            assert_eq!(hit.millis, 250);
        }
        assert!(reg.fire(FaultSite::Stall, Some(0), Some(1)).is_none());
    }

    #[test]
    fn legacy_spellings_alias_worker_zero() {
        let reg = FaultRegistry::parse("kill_worker:3").unwrap();
        assert!(reg.fire(FaultSite::Kill, Some(0), Some(3)).is_some());
        let reg = FaultRegistry::parse("stall_worker:1500").unwrap();
        let hit = reg.fire(FaultSite::Stall, Some(0), Some(9)).unwrap();
        assert_eq!(hit.millis, 1500);
    }

    #[test]
    fn coordinator_sites_take_phase_selectors() {
        let reg = FaultRegistry::parse("checkpoint_io@phase2,halt@phase3").unwrap();
        assert!(reg.fire(FaultSite::CheckpointIo, None, Some(1)).is_none());
        assert!(reg.fire(FaultSite::CheckpointIo, None, Some(2)).is_some());
        assert!(reg.fire(FaultSite::Halt, None, Some(3)).is_some());
        assert!(reg.fire(FaultSite::Halt, None, Some(3)).is_none(), "halt is fire-once");
    }

    #[test]
    fn spill_sites_take_optional_round_selectors_and_fire_once() {
        let reg = FaultRegistry::parse("spill_io@round2,spill_corrupt").unwrap();
        // Round-pinned spill_io misses other rounds, hits round 2 once.
        assert!(reg.fire(FaultSite::SpillIo, None, Some(1)).is_none());
        assert!(reg.fire(FaultSite::SpillIo, None, Some(2)).is_some());
        assert!(reg.fire(FaultSite::SpillIo, None, Some(2)).is_none(), "spill_io is fire-once");
        // Selector-less spill_corrupt hits the first round queried, once.
        assert!(reg.fire(FaultSite::SpillCorrupt, None, Some(7)).is_some());
        assert!(reg.fire(FaultSite::SpillCorrupt, None, Some(8)).is_none());
        // Spill sites never travel through worker_spec.
        assert!(!FaultSite::SpillIo.is_worker_site());
        assert!(!FaultSite::SpillCorrupt.is_worker_site());
        assert!(reg.worker_spec(0, None).is_none());
    }

    #[test]
    fn spill_specs_round_trip_through_to_spec() {
        let reg = FaultRegistry::parse("spill_io@round3,spill_corrupt@phase1,spill_io").unwrap();
        let specs: Vec<String> = reg.actions().iter().map(|a| a.to_spec()).collect();
        assert_eq!(specs, ["spill_io@round3", "spill_corrupt@round1", "spill_io"]);
        let reparsed = FaultRegistry::parse(&specs.join(",")).unwrap();
        assert!(reparsed.fire(FaultSite::SpillIo, None, Some(3)).is_some());
        assert!(reparsed.fire(FaultSite::SpillCorrupt, None, Some(1)).is_some());
    }

    #[test]
    fn worker_spec_scopes_and_filters_respawns() {
        let reg = FaultRegistry::parse("kill:w1@round1,kill:w1@round3,stall:w1:10,kill:w0@round2")
            .unwrap();
        // First incarnation of w1 sees everything addressed to it.
        let spec = reg.worker_spec(1, None).unwrap();
        let w1 = FaultRegistry::parse(&spec).unwrap();
        assert!(w1.fire(FaultSite::Kill, Some(1), Some(1)).is_some());
        assert!(w1.fire(FaultSite::Stall, Some(1), Some(1)).is_some());
        // A respawn during round 1 only inherits strictly-later rounds: the
        // round-1 kill and the round-less stall are filtered out.
        let spec = reg.worker_spec(1, Some(1)).unwrap();
        let w1b = FaultRegistry::parse(&spec).unwrap();
        assert!(w1b.fire(FaultSite::Kill, Some(1), Some(1)).is_none());
        assert!(w1b.fire(FaultSite::Stall, Some(1), Some(2)).is_none());
        assert!(w1b.fire(FaultSite::Kill, Some(1), Some(3)).is_some());
        // Nothing left after round 3 — and w2 never had anything.
        assert!(reg.worker_spec(1, Some(3)).is_none());
        assert!(reg.worker_spec(2, None).is_none());
    }

    #[test]
    fn worker_spec_carries_the_seed() {
        let reg = FaultRegistry::parse("seed:99,corrupt_frame:w0@round1").unwrap();
        let spec = reg.worker_spec(0, None).unwrap();
        assert_eq!(FaultRegistry::parse(&spec).unwrap().seed(), 99);
    }

    #[test]
    fn junk_specs_are_errors_not_panics() {
        for bad in [
            "explode",
            "kill",
            "kill:1",
            "kill:w1@round",
            "kill:wx@round1",
            "stall:w0",
            "stall:w0:abc",
            "seed:-1",
            "halt",
            "halt@banana2",
            "kill:w1,,stall:w0:5",
            "spill_io:w0",
            "spill_io@round",
            "spill_corrupt@banana1",
            "spill_corrupt:w1@round2",
        ] {
            assert!(FaultRegistry::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(FaultRegistry::parse("").unwrap().is_empty());
        assert!(FaultRegistry::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn corrupt_payload_is_deterministic_and_always_shrinks() {
        let mut a = vec![1u8; 64];
        let mut b = vec![1u8; 64];
        corrupt_payload(&mut a, 42);
        corrupt_payload(&mut b, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 63);
        let mut c = vec![1u8; 64];
        corrupt_payload(&mut c, 43);
        // Different seeds pick different bytes (for these sizes).
        assert!(a != c || splitmix64(42 ^ 64) % 64 == splitmix64(43 ^ 64) % 64);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_payload(&mut empty, 1);
        assert!(empty.is_empty());
    }
}
