//! # snr-mapreduce
//!
//! A small, in-memory MapReduce engine used to express the User-Matching
//! algorithm of Korula & Lattanzi in the shape the paper claims for it:
//! *"the internal for loop can be implemented efficiently with 4
//! consecutive rounds of MapReduce, so the total running time would consist
//! of `O(k log D)` MapReductions."* (With the combiner support below,
//! `snr-core` actually does each internal loop in **one** round — same
//! `O(k log D)` bound, 4× fewer rounds than the paper's sketch.)
//!
//! The engine is deliberately faithful to the programming model rather than
//! to any particular distributed runtime: a job is a `map` function applied
//! to the input, a partitioned shuffle, and a `reduce` function applied to
//! every key group. Two job shapes are supported:
//!
//! * [`Engine::run`] — the classic record-at-a-time round with a
//!   hash-partitioned shuffle (the word-count shape);
//! * [`Engine::run_combined`] — the aggregation shape production MapReduce
//!   jobs actually use: mappers see a whole input *chunk* (so they can
//!   amortize setup and pre-aggregate), a **combiner** collapses each map
//!   task's buckets before the shuffle, a caller-supplied partitioner (e.g.
//!   [`partition::range_partition`]) routes keys, and the reduce side folds
//!   each partition's sorted key groups into one output value — per-partition
//!   state without a global materialization. This is what lets the witness
//!   rounds of `snr-core` shuffle one packed record per *scored pair*
//!   instead of one per *witness contribution*.
//!
//! Jobs run on a pool of OS threads (crossbeam scoped threads); the
//! [`Engine`] records per-round statistics (records mapped, key groups
//! reduced, pre- and post-combiner shuffle volume in records and bytes) so
//! that the round-complexity *and* data-movement claims can be checked
//! empirically — see the round-counting integration tests and the
//! `bench_mapreduce` benchmark.
//!
//! ## Example
//!
//! ```
//! use snr_mapreduce::Engine;
//!
//! // Classic word count.
//! let engine = Engine::new(4);
//! let docs = vec!["a b a".to_string(), "b c".to_string()];
//! let mut counts: Vec<(String, usize)> = engine.run(
//!     "wordcount",
//!     docs,
//!     |doc| doc.split_whitespace().map(|w| (w.to_string(), 1usize)).collect(),
//!     |word, ones| vec![(word, ones.iter().sum())],
//! );
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
//! assert_eq!(engine.stats().rounds, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod partition;
pub mod spill;
pub mod stats;

pub use engine::{Engine, ENV_SPILL_BUDGET};
pub use spill::{EngineError, SpillCodec};
pub use stats::{EngineStats, RoundStats};
