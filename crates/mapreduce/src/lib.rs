//! # snr-mapreduce
//!
//! A small, in-memory MapReduce engine used to express the User-Matching
//! algorithm of Korula & Lattanzi in exactly the shape the paper claims for
//! it: *"the internal for loop can be implemented efficiently with 4
//! consecutive rounds of MapReduce, so the total running time would consist
//! of `O(k log D)` MapReductions."*
//!
//! The engine is deliberately faithful to the programming model rather than
//! to any particular distributed runtime: a job is a `map` function applied
//! to every input record, a hash-partitioned shuffle, and a `reduce` function
//! applied to every key group. Jobs run on a pool of OS threads (crossbeam
//! scoped threads); the [`Engine`] records per-round statistics (records
//! mapped, key groups reduced, shuffled record counts) so that the
//! round-complexity claims can be checked empirically — see the
//! round-counting integration tests and the `bench_mapreduce` benchmark.
//!
//! ## Example
//!
//! ```
//! use snr_mapreduce::Engine;
//!
//! // Classic word count.
//! let engine = Engine::new(4);
//! let docs = vec!["a b a".to_string(), "b c".to_string()];
//! let mut counts: Vec<(String, usize)> = engine.run(
//!     "wordcount",
//!     docs,
//!     |doc| doc.split_whitespace().map(|w| (w.to_string(), 1usize)).collect(),
//!     |word, ones| vec![(word, ones.iter().sum())],
//! );
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
//! assert_eq!(engine.stats().rounds, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod partition;
pub mod stats;

pub use engine::Engine;
pub use stats::{EngineStats, RoundStats};
