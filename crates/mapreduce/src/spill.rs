//! Spill-to-disk run files for the out-of-core shuffle.
//!
//! When a round's accumulated post-combine shuffle bytes cross the engine's
//! memory budget (see [`crate::Engine::with_spill_budget`]), map tasks flush
//! their sorted per-partition buckets to *run files* in a scratch directory
//! and the reduce side k-way-merges the on-disk runs with the in-memory
//! tail. This module holds the pieces: the [`SpillCodec`] serialization
//! seam, the checksummed run-file writer/reader, and the streaming merge.
//!
//! # Run-file format
//!
//! The framing mirrors the `snr-store` segment files (magic, version, FNV-1a
//! trailer) so corruption is always detected before any group is decoded:
//!
//! ```text
//! [ magic "SNRM" | version u16 | round u32 | task u32 | partition u32
//!   | group_count u64 ]                                      -- 26 bytes
//! group_count × [ len u32 | codec payload ]                  -- body
//! [ fnv1a-64 of everything above ]                           -- 8 bytes
//! ```
//!
//! All integers are little-endian. A reader first streams the whole file
//! through the checksum ([`RunReader::open`]) and only then decodes groups
//! one at a time, so a flipped byte or a truncated tail surfaces as a clean
//! [`EngineError::Spill`] — never a panic, never a silently wrong group.

use parking_lot::Mutex;
use snr_faults::{FaultRegistry, FaultSite};
use snr_store::segment::{fnv1a, fnv1a_checksum};
use std::collections::BinaryHeap;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// Magic prefix of a spill run file ("SNR Mapreduce run").
pub const RUN_MAGIC: [u8; 4] = *b"SNRM";
/// Run-file format version.
pub const RUN_VERSION: u16 = 1;
/// Header bytes: magic + version + round + task + partition + group count.
pub const RUN_HEADER_LEN: usize = 4 + 2 + 4 + 4 + 4 + 8;
/// Trailer bytes: the FNV-1a checksum of header + body.
pub const RUN_FOOTER_LEN: usize = 8;

/// Error surfaced by the spillable round shapes
/// ([`crate::Engine::run_combined_spilling`]).
///
/// The in-memory path is infallible; every variant here originates from the
/// spill machinery — scratch-dir I/O, run-file corruption, or an injected
/// `spill_io`/`spill_corrupt` fault. The engine guarantees that by the time
/// an `EngineError` reaches the caller the round's scratch directory has
/// been removed and no partial output was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A spill run file could not be written, read back, or validated.
    Spill(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spill(why) => write!(f, "spill error: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Serialization seam between the engine's generic `(K, Vec<V>)` key groups
/// and the bytes that hit a run file.
///
/// The engine itself places no serialization bound on keys or values, so
/// spilling is opt-in per round shape: callers of
/// [`crate::Engine::run_combined_spilling`] supply a codec for their
/// concrete types (e.g. the packed score-row codec in `snr-core`).
///
/// The contract is exact round-tripping: `decode_group(encode_group(k, vs))`
/// must reproduce `(k, vs)` bit-identically, because the spilled and
/// in-memory halves of a shuffle are merged back together and the output is
/// pinned byte-for-byte against the all-in-RAM path.
pub trait SpillCodec<K, V> {
    /// Appends one encoded key group to `out`.
    fn encode_group(&self, key: &K, values: &[V], out: &mut Vec<u8>);
    /// Decodes one key group previously produced by
    /// [`SpillCodec::encode_group`]. Errors are descriptive strings; the
    /// engine wraps them in [`EngineError::Spill`].
    fn decode_group(&self, bytes: &[u8]) -> Result<(K, Vec<V>), String>;
}

/// Placeholder codec for the infallible in-memory round shapes, which never
/// spill and therefore never invoke it.
pub(crate) struct NoSpill;

impl<K, V> SpillCodec<K, V> for NoSpill {
    fn encode_group(&self, _key: &K, _values: &[V], _out: &mut Vec<u8>) {
        unreachable!("in-memory rounds never spill")
    }

    fn decode_group(&self, _bytes: &[u8]) -> Result<(K, Vec<V>), String> {
        unreachable!("in-memory rounds never spill")
    }
}

fn io_spill(path: &Path, what: &str, e: std::io::Error) -> EngineError {
    EngineError::Spill(format!("{what} {}: {e}", path.display()))
}

/// Writes one map task's sorted partition bucket as a checksummed run file.
/// Returns the file size in bytes. Consults `faults` at the `spill_io` site
/// *after* the header is out, so an injected hit leaves a partial file
/// behind — exactly what a real mid-spill I/O error does — for the round's
/// scratch cleanup to remove.
pub(crate) fn write_run<K, V, SC: SpillCodec<K, V>>(
    path: &Path,
    round: u32,
    task: u32,
    partition: u32,
    groups: &[(K, Vec<V>)],
    codec: &SC,
    faults: &Mutex<FaultRegistry>,
) -> Result<u64, EngineError> {
    let file = File::create(path).map_err(|e| io_spill(path, "creating run file", e))?;
    let mut w = BufWriter::new(file);
    let mut hash = fnv1a_checksum(&[]);
    let mut total = 0u64;
    let mut put = |w: &mut BufWriter<File>, bytes: &[u8]| -> Result<(), EngineError> {
        hash = fnv1a(hash, bytes);
        total += bytes.len() as u64;
        w.write_all(bytes).map_err(|e| io_spill(path, "writing run file", e))
    };

    let mut header = Vec::with_capacity(RUN_HEADER_LEN);
    header.extend_from_slice(&RUN_MAGIC);
    header.extend_from_slice(&RUN_VERSION.to_le_bytes());
    header.extend_from_slice(&round.to_le_bytes());
    header.extend_from_slice(&task.to_le_bytes());
    header.extend_from_slice(&partition.to_le_bytes());
    header.extend_from_slice(&(groups.len() as u64).to_le_bytes());
    put(&mut w, &header)?;

    if faults.lock().fire(FaultSite::SpillIo, None, Some(round)).is_some() {
        let _ = w.flush();
        return Err(EngineError::Spill(format!(
            "injected spill_io fault writing {} (round {round})",
            path.display()
        )));
    }

    let mut buf = Vec::new();
    for (k, vs) in groups {
        buf.clear();
        codec.encode_group(k, vs, &mut buf);
        let len = u32::try_from(buf.len()).map_err(|_| {
            EngineError::Spill(format!("group exceeds u32 length in {}", path.display()))
        })?;
        put(&mut w, &len.to_le_bytes())?;
        put(&mut w, &buf)?;
    }
    let footer = hash.to_le_bytes();
    total += footer.len() as u64;
    w.write_all(&footer).map_err(|e| io_spill(path, "writing run file", e))?;
    w.flush().map_err(|e| io_spill(path, "flushing run file", e))?;
    Ok(total)
}

/// Streaming reader over one run file.
///
/// [`RunReader::open`] makes a full checksum pass (bounded buffer) before
/// any decoding, so by the time [`RunReader::next_group`] hands groups out
/// the length prefixes are known-good and memory stays bounded by one group.
pub(crate) struct RunReader<'a, K, V, SC> {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
    codec: &'a SC,
    _marker: PhantomData<(K, V)>,
}

impl<'a, K, V, SC: SpillCodec<K, V>> RunReader<'a, K, V, SC> {
    /// Validates the file's framing and checksum, then positions a buffered
    /// reader at the first group.
    pub(crate) fn open(path: &Path, codec: &'a SC) -> Result<Self, EngineError> {
        let file = File::open(path).map_err(|e| io_spill(path, "opening run file", e))?;
        let len = file.metadata().map_err(|e| io_spill(path, "inspecting run file", e))?.len();
        if (len as usize) < RUN_HEADER_LEN + RUN_FOOTER_LEN {
            return Err(EngineError::Spill(format!(
                "run file {} truncated: {len} bytes, need at least {}",
                path.display(),
                RUN_HEADER_LEN + RUN_FOOTER_LEN
            )));
        }
        // Pass 1: stream everything but the footer through the checksum.
        let mut reader = BufReader::new(file);
        let mut hash = fnv1a_checksum(&[]);
        let mut left = len - RUN_FOOTER_LEN as u64;
        let mut chunk = [0u8; 64 * 1024];
        while left > 0 {
            let want = chunk.len().min(left as usize);
            reader
                .read_exact(&mut chunk[..want])
                .map_err(|e| io_spill(path, "reading run file", e))?;
            hash = fnv1a(hash, &chunk[..want]);
            left -= want as u64;
        }
        let mut footer = [0u8; RUN_FOOTER_LEN];
        reader.read_exact(&mut footer).map_err(|e| io_spill(path, "reading run file", e))?;
        if u64::from_le_bytes(footer) != hash {
            return Err(EngineError::Spill(format!(
                "run file {} failed its checksum (corrupt spill data)",
                path.display()
            )));
        }
        // Pass 2: rewind and parse the header; groups stream from here.
        reader.seek(SeekFrom::Start(0)).map_err(|e| io_spill(path, "rewinding run file", e))?;
        let mut header = [0u8; RUN_HEADER_LEN];
        reader.read_exact(&mut header).map_err(|e| io_spill(path, "reading run file", e))?;
        if header[..4] != RUN_MAGIC {
            return Err(EngineError::Spill(format!(
                "run file {} has a bad magic prefix",
                path.display()
            )));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != RUN_VERSION {
            return Err(EngineError::Spill(format!(
                "run file {} has unsupported version {version}",
                path.display()
            )));
        }
        let remaining = u64::from_le_bytes(header[18..26].try_into().expect("8-byte slice"));
        Ok(RunReader { path: path.to_path_buf(), reader, remaining, codec, _marker: PhantomData })
    }

    /// The next key group, or `None` after the last one.
    pub(crate) fn next_group(&mut self) -> Result<Option<(K, Vec<V>)>, EngineError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut len = [0u8; 4];
        self.reader
            .read_exact(&mut len)
            .map_err(|e| io_spill(&self.path, "reading run file", e))?;
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| io_spill(&self.path, "reading run file", e))?;
        self.codec.decode_group(&payload).map(Some).map_err(|why| {
            EngineError::Spill(format!("decoding group from {}: {why}", self.path.display()))
        })
    }
}

/// One reduce-side merge input: a map task's bucket, either still in memory
/// or read back from its spill run.
pub(crate) enum MergeSource<'a, K, V, SC> {
    /// The task's bucket never spilled.
    Mem(std::vec::IntoIter<(K, Vec<V>)>),
    /// The task's bucket lives in a run file.
    Disk(RunReader<'a, K, V, SC>),
}

impl<K, V, SC: SpillCodec<K, V>> MergeSource<'_, K, V, SC> {
    fn next_group(&mut self) -> Result<Option<(K, Vec<V>)>, EngineError> {
        match self {
            MergeSource::Mem(iter) => Ok(iter.next()),
            MergeSource::Disk(reader) => reader.next_group(),
        }
    }
}

/// Heap entry ordered by `(key, task)` — the exact order the in-memory
/// stable sort produces, so the streaming merge is bit-compatible with
/// `merge_sorted_buckets`.
struct HeapGroup<K, V> {
    key: K,
    task: usize,
    values: Vec<V>,
}

impl<K: Ord, V> PartialEq for HeapGroup<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.task == other.task
    }
}
impl<K: Ord, V> Eq for HeapGroup<K, V> {}
impl<K: Ord, V> PartialOrd for HeapGroup<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for HeapGroup<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and the merge wants the
        // smallest (key, task) first.
        (&other.key, other.task).cmp(&(&self.key, self.task))
    }
}

/// K-way-merges one partition's sources (in map-task order) into ascending
/// key groups, concatenating equal keys' values in task order.
///
/// Each source yields strictly ascending keys (each map task's bucket was
/// sorted and grouped before spilling), so ordering heap entries by
/// `(key, task)` reproduces exactly what concatenating the buckets in task
/// order and stable-sorting by key produces — the contract the in-memory
/// reduce path has always had.
pub(crate) fn merge_spill_sources<K: Ord, V, SC: SpillCodec<K, V>>(
    mut sources: Vec<MergeSource<'_, K, V, SC>>,
) -> Result<Vec<(K, Vec<V>)>, EngineError> {
    let mut heap = BinaryHeap::with_capacity(sources.len());
    for (task, source) in sources.iter_mut().enumerate() {
        if let Some((key, values)) = source.next_group()? {
            heap.push(HeapGroup { key, task, values });
        }
    }
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    while let Some(HeapGroup { key, task, mut values }) = heap.pop() {
        if let Some((k, vs)) = sources[task].next_group()? {
            heap.push(HeapGroup { key: k, task, values: vs });
        }
        match groups.last_mut() {
            Some((last_key, last_values)) if *last_key == key => last_values.append(&mut values),
            _ => groups.push((key, values)),
        }
    }
    Ok(groups)
}

/// Deterministically flips one byte of the first run file (in sorted path
/// order) under `dir` — the `spill_corrupt` fault payload. The flipped byte
/// is chosen by `splitmix64(seed ^ file_len)`, so the same spec corrupts
/// the same byte on every run. Returns the corrupted path, or `None` when
/// no run file exists.
pub(crate) fn corrupt_first_run(dir: &Path, seed: u64) -> Option<PathBuf> {
    let mut runs: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|entry| Some(entry.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "snrr"))
        .collect();
    runs.sort();
    let path = runs.into_iter().next()?;
    let mut bytes = std::fs::read(&path).ok()?;
    if bytes.is_empty() {
        return None;
    }
    let i = (snr_faults::splitmix64(seed ^ bytes.len() as u64) % bytes.len() as u64) as usize;
    bytes[i] ^= 0x5A;
    std::fs::write(&path, bytes).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy codec for `(u32, Vec<u64>)` groups: key, count, then values.
    struct U32U64Codec;

    impl SpillCodec<u32, u64> for U32U64Codec {
        fn encode_group(&self, key: &u32, values: &[u64], out: &mut Vec<u8>) {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }

        fn decode_group(&self, bytes: &[u8]) -> Result<(u32, Vec<u64>), String> {
            if bytes.len() < 8 {
                return Err(format!("group too short: {} bytes", bytes.len()));
            }
            let key = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            if bytes.len() != 8 + 8 * count {
                return Err(format!(
                    "group length mismatch: {} bytes for {count} values",
                    bytes.len()
                ));
            }
            let values = bytes[8..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok((key, values))
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snr-spill-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_groups() -> Vec<(u32, Vec<u64>)> {
        vec![(1, vec![10, 11]), (5, vec![50]), (9, vec![90, 91, 92])]
    }

    #[test]
    fn run_file_round_trips_bit_identically() {
        let dir = scratch("roundtrip");
        let path = dir.join("run-t0-p0.snrr");
        let groups = sample_groups();
        let faults = Mutex::new(FaultRegistry::empty());
        let bytes = write_run(&path, 1, 0, 0, &groups, &U32U64Codec, &faults).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let mut reader = RunReader::open(&path, &U32U64Codec).unwrap();
        let mut back = Vec::new();
        while let Some(g) = reader.next_group().unwrap() {
            back.push(g);
        }
        assert_eq!(back, groups);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_run_file_round_trips() {
        let dir = scratch("empty");
        let path = dir.join("run-t0-p1.snrr");
        let faults = Mutex::new(FaultRegistry::empty());
        write_run(&path, 2, 0, 1, &Vec::<(u32, Vec<u64>)>::new(), &U32U64Codec, &faults).unwrap();
        let mut reader = RunReader::open(&path, &U32U64Codec).unwrap();
        assert!(reader.next_group().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_a_clean_error_never_a_panic() {
        let dir = scratch("flip");
        let path = dir.join("run-t0-p0.snrr");
        let faults = Mutex::new(FaultRegistry::empty());
        write_run(&path, 1, 0, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[i] ^= 0x5A;
            std::fs::write(&path, &bytes).unwrap();
            let outcome = RunReader::open(&path, &U32U64Codec).and_then(|mut r| {
                while r.next_group()?.is_some() {}
                Ok(())
            });
            let err = outcome.expect_err("flipping a byte must be detected");
            let EngineError::Spill(why) = err;
            assert!(
                why.contains("checksum") || why.contains("magic"),
                "byte {i}: unexpected error {why:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_a_clean_error_never_a_panic() {
        let dir = scratch("truncate");
        let path = dir.join("run-t0-p0.snrr");
        let faults = Mutex::new(FaultRegistry::empty());
        write_run(&path, 1, 0, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let outcome = RunReader::open(&path, &U32U64Codec).and_then(|mut r| {
                while r.next_group()?.is_some() {}
                Ok(())
            });
            assert!(outcome.is_err(), "truncating at {cut} must be detected");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_io_fault_fires_once_and_leaves_a_partial_file() {
        let dir = scratch("fault");
        let path = dir.join("run-t0-p0.snrr");
        let faults = Mutex::new(FaultRegistry::parse("spill_io@round3").unwrap());
        // Wrong round: the write succeeds.
        write_run(&path, 1, 0, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        // Matching round: clean error, partial (header-only) file on disk.
        let err = write_run(&path, 3, 0, 0, &sample_groups(), &U32U64Codec, &faults)
            .expect_err("fault must fire");
        assert!(matches!(err, EngineError::Spill(ref why) if why.contains("spill_io")));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), RUN_HEADER_LEN as u64);
        // Fire-once: the retry goes through.
        write_run(&path, 3, 0, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_matches_concatenate_then_stable_sort() {
        let dir = scratch("merge");
        let faults = Mutex::new(FaultRegistry::empty());
        // Three "tasks" with overlapping keys; task 1 spills to disk.
        let t0 = vec![(1u32, vec![100u64]), (4, vec![400])];
        let t1 = vec![(1u32, vec![101u64]), (2, vec![200]), (4, vec![401])];
        let t2 = vec![(2u32, vec![201u64])];
        let path = dir.join("run-t1-p0.snrr");
        write_run(&path, 1, 1, 0, &t1, &U32U64Codec, &faults).unwrap();
        let sources = vec![
            MergeSource::Mem(t0.into_iter()),
            MergeSource::Disk(RunReader::open(&path, &U32U64Codec).unwrap()),
            MergeSource::Mem(t2.into_iter()),
        ];
        let merged = merge_spill_sources(sources).unwrap();
        assert_eq!(
            merged,
            vec![(1, vec![100, 101]), (2, vec![200, 201]), (4, vec![400, 401]),],
            "values must concatenate in task order within each key"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_first_run_picks_deterministically_and_breaks_the_checksum() {
        let dir = scratch("corrupt");
        let faults = Mutex::new(FaultRegistry::empty());
        let a = dir.join("run-t0-p0.snrr");
        let b = dir.join("run-t1-p0.snrr");
        write_run(&a, 1, 0, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        write_run(&b, 1, 1, 0, &sample_groups(), &U32U64Codec, &faults).unwrap();
        let pristine_b = std::fs::read(&b).unwrap();
        let hit = corrupt_first_run(&dir, 7).expect("a run file exists");
        assert_eq!(hit, a, "sorted path order picks run-t0 first");
        assert_eq!(std::fs::read(&b).unwrap(), pristine_b, "only one file is touched");
        assert!(RunReader::open(&a, &U32U64Codec).is_err(), "corruption must be detected");
        assert!(RunReader::open(&b, &U32U64Codec).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
