//! The MapReduce execution engine.

use crate::partition::partition_for;
use crate::stats::{EngineStats, RoundStats};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::time::Instant;

/// Default number of input records per map task.
const DEFAULT_CHUNK: usize = 8_192;

/// An in-memory MapReduce engine.
///
/// One engine instance corresponds to one "cluster": it owns a worker count,
/// a partition count for the shuffle, and cumulative [`EngineStats`] across
/// every job (round) it runs. Jobs are expressed as plain closures; see
/// [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    reduce_partitions: usize,
    chunk_size: usize,
    stats: Mutex<EngineStats>,
}

impl Engine {
    /// Creates an engine with `workers` map/reduce threads and the same
    /// number of shuffle partitions.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Engine {
            workers,
            reduce_partitions: workers.max(1),
            chunk_size: DEFAULT_CHUNK,
            stats: Mutex::new(EngineStats::default()),
        }
    }

    /// Creates a single-threaded engine (useful for deterministic debugging).
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// Overrides the number of shuffle partitions (reduce tasks).
    pub fn with_reduce_partitions(mut self, partitions: usize) -> Self {
        self.reduce_partitions = partitions.max(1);
        self
    }

    /// Overrides the number of input records per map task.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = chunk.max(1);
        self
    }

    /// Number of worker threads used for map and reduce tasks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A snapshot of the cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.lock().clone()
    }

    /// Clears the cumulative statistics.
    pub fn reset_stats(&self) {
        self.stats.lock().clear();
    }

    /// Runs one MapReduce round.
    ///
    /// * `map` is applied to every input record and emits intermediate
    ///   `(key, value)` pairs.
    /// * Pairs are shuffled (hash-partitioned and grouped by key).
    /// * `reduce` is applied once per distinct key with all of its values and
    ///   emits output records.
    ///
    /// The output order is deterministic: results are sorted by the reduce
    /// partition index, then by key order within each partition.
    pub fn run<I, K, V, O, M, R>(&self, label: &str, input: Vec<I>, map: M, reduce: R) -> Vec<O>
    where
        I: Send,
        K: Hash + Eq + Ord + Send,
        V: Send,
        O: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        R: Fn(K, Vec<V>) -> Vec<O> + Sync,
    {
        let start = Instant::now();
        let input_records = input.len();
        let parts = self.reduce_partitions;

        // ---- Map phase -----------------------------------------------------
        // Split the input into chunks and map them on the worker pool. Each
        // worker produces `parts` buckets of (key, value) pairs so the shuffle
        // is just a concatenation of per-worker buckets.
        let chunk_size = self.chunk_size;
        let chunks: Vec<Vec<I>> = split_into_chunks(input, chunk_size);
        let map_tasks = chunks.len();
        let buckets: Vec<Vec<Vec<(K, V)>>> = if self.workers == 1 || map_tasks <= 1 {
            chunks
                .into_iter()
                .map(|chunk| {
                    let mut local: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                    for record in chunk {
                        for (k, v) in map(record) {
                            let p = partition_for(&k, parts);
                            local[p].push((k, v));
                        }
                    }
                    local
                })
                .collect()
        } else {
            parallel_map(self.workers, chunks, |chunk| {
                let mut local: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
                for record in chunk {
                    for (k, v) in map(record) {
                        let p = partition_for(&k, parts);
                        local[p].push((k, v));
                    }
                }
                local
            })
        };

        // ---- Shuffle + reduce phase -----------------------------------------
        // Transpose the per-task buckets into per-partition columns (cheap:
        // only `Vec` headers move), then group and reduce each partition on
        // the worker pool. Grouping consumes the column's buckets directly,
        // so the shuffle's record movement — formerly a single-threaded
        // concatenation — happens inside the per-partition workers.
        let mut shuffled_records = 0usize;
        let mut columns: Vec<Vec<Vec<(K, V)>>> =
            (0..parts).map(|_| Vec::with_capacity(map_tasks)).collect();
        for mut worker_buckets in buckets {
            for p in (0..parts).rev() {
                let bucket = worker_buckets.pop().expect("bucket count mismatch");
                shuffled_records += bucket.len();
                columns[p].push(bucket);
            }
        }

        let reduce_fn = &reduce;
        let reduced: Vec<(usize, Vec<O>)> = if self.workers == 1 || parts <= 1 {
            columns.into_iter().map(|col| reduce_partition(col, reduce_fn)).collect()
        } else {
            parallel_map(self.workers, columns, |col| reduce_partition(col, reduce_fn))
        };

        let key_groups: usize = reduced.iter().map(|(groups, _)| *groups).sum();
        let mut output = Vec::new();
        for (_, mut part_out) in reduced {
            output.append(&mut part_out);
        }

        self.stats.lock().record(RoundStats {
            label: label.to_string(),
            input_records,
            shuffled_records,
            key_groups,
            output_records: output.len(),
            map_tasks,
            reduce_tasks: parts,
            duration: start.elapsed(),
        });
        output
    }
}

/// Groups one partition's `(key, value)` pairs — arriving as one bucket per
/// map task — by key (in sorted key order) and applies the reducer. Returns
/// `(number_of_key_groups, outputs)`. Consuming the buckets here, inside
/// the per-partition worker, is what makes the shuffle partition-parallel.
fn reduce_partition<K, V, O, R>(buckets: Vec<Vec<(K, V)>>, reduce: &R) -> (usize, Vec<O>)
where
    K: Hash + Eq + Ord,
    R: Fn(K, Vec<V>) -> Vec<O>,
{
    // Group with a HashMap, then sort keys for deterministic output order.
    let record_count: usize = buckets.iter().map(Vec::len).sum();
    let mut groups: HashMap<K, Vec<V>> = HashMap::with_capacity(record_count.min(1 << 20));
    for bucket in buckets {
        for (k, v) in bucket {
            groups.entry(k).or_default().push(v);
        }
    }
    let mut keyed: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    let group_count = keyed.len();
    let mut out = Vec::new();
    for (k, vs) in keyed {
        out.extend(reduce(k, vs));
    }
    (group_count, out)
}

/// Splits `input` into chunks of at most `chunk_size` records.
fn split_into_chunks<I>(input: Vec<I>, chunk_size: usize) -> Vec<Vec<I>> {
    if input.is_empty() {
        return Vec::new();
    }
    let mut chunks = Vec::with_capacity(input.len() / chunk_size + 1);
    let mut current = Vec::with_capacity(chunk_size.min(input.len()));
    for record in input {
        current.push(record);
        if current.len() == chunk_size {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Applies `f` to every task on a pool of `workers` crossbeam scoped threads,
/// preserving task order in the result.
fn parallel_map<T, U, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let task_count = tasks.len();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(task_count);
    slots.resize_with(task_count, || None);
    let slots = Mutex::new(slots);
    let queue = Mutex::new(tasks.into_iter().enumerate().collect::<Vec<_>>());

    crossbeam::scope(|scope| {
        for _ in 0..workers.min(task_count).max(1) {
            scope.spawn(|_| loop {
                let next = queue.lock().pop();
                match next {
                    Some((idx, task)) => {
                        let result = f(task);
                        slots.lock()[idx] = Some(result);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("mapreduce worker thread panicked");

    slots.into_inner().into_iter().map(|slot| slot.expect("task slot not filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count(engine: &Engine, docs: Vec<String>) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = engine.run(
            "wc",
            docs,
            |doc: String| doc.split_whitespace().map(|w| (w.to_string(), 1usize)).collect(),
            |w, ones| vec![(w, ones.len())],
        );
        out.sort();
        out
    }

    #[test]
    fn word_count_single_threaded() {
        let engine = Engine::sequential();
        let out = word_count(&engine, vec!["x y x".into(), "y z".into()]);
        assert_eq!(out, vec![("x".into(), 2), ("y".into(), 2), ("z".into(), 1)]);
    }

    #[test]
    fn word_count_multi_threaded_matches_sequential() {
        let seq = Engine::sequential();
        let par = Engine::new(4).with_chunk_size(1);
        let docs: Vec<String> = (0..50).map(|i| format!("w{} w{} shared", i, i % 7)).collect();
        assert_eq!(word_count(&seq, docs.clone()), word_count(&par, docs));
    }

    #[test]
    fn empty_input_produces_empty_output_and_counts_a_round() {
        let engine = Engine::new(2);
        let out: Vec<(u32, u32)> =
            engine.run("empty", Vec::<u32>::new(), |x| vec![(x, x)], |k, _| vec![(k, k)]);
        assert!(out.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_input_records, 0);
        assert_eq!(stats.total_shuffled_records, 0);
    }

    #[test]
    fn stats_track_shuffled_and_output_records() {
        let engine = Engine::new(3).with_chunk_size(2);
        let input: Vec<u32> = (0..10).collect();
        // Each record emits 2 pairs; keys collapse into 5 groups.
        let out: Vec<(u32, usize)> = engine.run(
            "pairs",
            input,
            |x| vec![(x % 5, x), (x % 5, x + 100)],
            |k, vs| vec![(k, vs.len())],
        );
        assert_eq!(out.len(), 5);
        let stats = engine.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_input_records, 10);
        assert_eq!(stats.total_shuffled_records, 20);
        assert_eq!(stats.total_output_records, 5);
        assert_eq!(stats.per_round[0].key_groups, 5);
        // Every group got both pairs from each of its 2 source records.
        for (_, count) in out {
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn chained_rounds_accumulate_round_count() {
        let engine = Engine::new(2);
        let first: Vec<(u32, u32)> = engine.run(
            "r1",
            vec![1u32, 2, 3],
            |x| vec![(x % 2, x)],
            |k, vs| vec![(k, vs.iter().sum())],
        );
        let second: Vec<(u32, u32)> =
            engine.run("r2", first, |(k, v)| vec![(k, v * 2)], |k, vs| vec![(k, vs.iter().sum())]);
        assert_eq!(engine.stats().rounds, 2);
        assert!(!second.is_empty());
    }

    #[test]
    fn reduce_sees_all_values_for_a_key_exactly_once() {
        let engine = Engine::new(4).with_chunk_size(3).with_reduce_partitions(5);
        let input: Vec<u64> = (0..1000).collect();
        let mut out: Vec<(u64, u64)> = engine.run(
            "sum",
            input,
            |x| vec![(x % 10, x)],
            |k, vs| vec![(k, vs.into_iter().sum::<u64>())],
        );
        out.sort();
        assert_eq!(out.len(), 10);
        for (k, sum) in out {
            // Sum of k, k+10, ..., k+990 = 100*k + 10*(0+10+...+990)/10
            let expected: u64 = (0..100).map(|i| k + 10 * i).sum();
            assert_eq!(sum, expected, "wrong sum for key {k}");
        }
        let stats = engine.stats();
        assert_eq!(stats.per_round[0].reduce_tasks, 5);
        assert!(stats.per_round[0].map_tasks >= 300);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let run = || {
            let engine = Engine::new(4).with_chunk_size(7);
            let input: Vec<u32> = (0..200).collect();
            engine.run(
                "det",
                input,
                |x| vec![(x % 17, x)],
                |k, mut vs| {
                    vs.sort_unstable();
                    vec![(k, vs)]
                },
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn split_into_chunks_covers_all_records() {
        let chunks = split_into_chunks((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        assert_eq!(chunks[3], vec![9]);
        assert!(split_into_chunks(Vec::<u32>::new(), 3).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn mapreduce_sum_matches_direct_sum(values in proptest::collection::vec(0u64..1000, 0..300),
                                            workers in 1usize..6,
                                            chunk in 1usize..20) {
            let engine = Engine::new(workers).with_chunk_size(chunk);
            let expected: u64 = values.iter().sum();
            let out: Vec<u64> = engine.run(
                "psum",
                values,
                |x| vec![((), x)],
                |_, vs| vec![vs.into_iter().sum::<u64>()],
            );
            let total: u64 = out.into_iter().sum();
            proptest::prop_assert_eq!(total, expected);
        }
    }
}
