//! The MapReduce execution engine.

use crate::partition::partition_for;
use crate::spill::{self, EngineError, MergeSource, NoSpill, RunReader, SpillCodec};
use crate::stats::{EngineStats, RoundStats};
use parking_lot::Mutex;
use snr_faults::{FaultRegistry, FaultSite};
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of input records per map task.
const DEFAULT_CHUNK: usize = 8_192;

/// Environment override for the engine's spill memory budget, in bytes
/// (`0` spills everything; unset or empty means unlimited). A malformed
/// value is reported and ignored — an engine must never fail to construct
/// because of its environment.
pub const ENV_SPILL_BUDGET: &str = "SNR_MR_SPILL_BUDGET";

/// Upper bound on map tasks per worker for [`Engine::run_combined`] rounds.
///
/// Chunked-map jobs typically pay a per-task setup cost (the witness rounds
/// build a task-local `LinkCache`), so their chunks are sized to keep the
/// task count at a small multiple of the worker count instead of letting a
/// tiny configured chunk size explode into thousands of setup-heavy tasks.
const COMBINED_TASKS_PER_WORKER: usize = 4;

/// An in-memory MapReduce engine.
///
/// One engine instance corresponds to one "cluster": it owns a worker count,
/// a partition count for the shuffle, and cumulative [`EngineStats`] across
/// every job (round) it runs. Jobs are expressed as plain closures in two
/// shapes: the classic record-at-a-time [`Engine::run`], and the
/// aggregation-friendly [`Engine::run_combined`] (chunked mappers, a
/// combiner hook, a caller-chosen partitioner, and a per-partition reduce
/// fold).
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    reduce_partitions: usize,
    chunk_size: usize,
    /// True once [`Engine::with_chunk_size`] has been called: an explicitly
    /// configured chunk size is honored exactly, even by the chunked-map
    /// rounds that would otherwise floor it (tests rely on tiny chunks to
    /// exercise fragmentation and combiner merging).
    chunk_size_overridden: bool,
    /// Memory budget for a round's resident post-combine shuffle bytes;
    /// `None` means unlimited (never spill). Only rounds run through
    /// [`Engine::run_combined_spilling`] can spill — the other shapes have
    /// no serialization codec and always hold their shuffle in memory.
    spill_budget: Option<u64>,
    /// Scratch directory for spill runs; `None` uses a per-process
    /// directory under the system temp dir.
    scratch_dir: Option<PathBuf>,
    /// 1-based round sequence, claimed at round start — the `R` that
    /// `spill_io@roundR` / `spill_corrupt@roundR` fault selectors match.
    round_seq: AtomicU64,
    /// Fault registry consulted by the spill writer/reader (from
    /// `SNR_FAULT` by default). Behind a mutex because registries latch
    /// fire-once state through a `Cell`.
    faults: Mutex<FaultRegistry>,
    stats: Mutex<EngineStats>,
}

impl Engine {
    /// Creates an engine with `workers` map/reduce threads and the same
    /// number of shuffle partitions. The spill budget defaults to the
    /// [`ENV_SPILL_BUDGET`] environment variable (unlimited when unset) and
    /// the fault registry to [`FaultRegistry::from_env`].
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Engine {
            workers,
            reduce_partitions: workers.max(1),
            chunk_size: DEFAULT_CHUNK,
            chunk_size_overridden: false,
            spill_budget: spill_budget_from_env(),
            scratch_dir: None,
            round_seq: AtomicU64::new(0),
            faults: Mutex::new(FaultRegistry::from_env()),
            stats: Mutex::new(EngineStats::default()),
        }
    }

    /// Creates a single-threaded engine (useful for deterministic debugging).
    pub fn sequential() -> Self {
        Engine::new(1)
    }

    /// Overrides the number of shuffle partitions (reduce tasks).
    pub fn with_reduce_partitions(mut self, partitions: usize) -> Self {
        self.reduce_partitions = partitions.max(1);
        self
    }

    /// Overrides the number of input records per map task. The given size
    /// is honored exactly by every round shape; without this call,
    /// [`Engine::run_combined`] sizes chunks itself to amortize per-task
    /// setup.
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = chunk.max(1);
        self.chunk_size_overridden = true;
        self
    }

    /// Overrides the spill memory budget in bytes: when a round's resident
    /// post-combine shuffle bytes would cross it, map tasks flush their
    /// buckets to disk runs. `Some(0)` spills every non-empty task;
    /// `None` (the default, absent [`ENV_SPILL_BUDGET`]) never spills.
    /// Output is bit-identical at every budget; only residency changes.
    pub fn with_spill_budget(mut self, budget: Option<u64>) -> Self {
        self.spill_budget = budget;
        self
    }

    /// Overrides the scratch directory spill runs are written under (a
    /// `round-<N>` subdirectory per round, removed when the round ends —
    /// successfully or not).
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = Some(dir.into());
        self
    }

    /// Replaces the fault registry consulted by the spill machinery (tests
    /// inject `spill_io` / `spill_corrupt` without touching the
    /// environment).
    pub fn with_fault_registry(mut self, faults: FaultRegistry) -> Self {
        self.faults = Mutex::new(faults);
        self
    }

    /// The configured spill budget (`None` = unlimited).
    pub fn spill_budget(&self) -> Option<u64> {
        self.spill_budget
    }

    /// Number of worker threads used for map and reduce tasks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of shuffle partitions (reduce tasks) per round.
    pub fn reduce_partitions(&self) -> usize {
        self.reduce_partitions
    }

    /// A snapshot of the cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.lock().clone()
    }

    /// Clears the cumulative statistics.
    pub fn reset_stats(&self) {
        self.stats.lock().clear();
    }

    /// Runs one classic MapReduce round.
    ///
    /// * `map` is applied to every input record and emits intermediate
    ///   `(key, value)` pairs.
    /// * Pairs are shuffled (hash-partitioned and grouped by key).
    /// * `reduce` is applied once per distinct key with all of its values and
    ///   emits output records.
    ///
    /// The output order is deterministic: results are sorted by the reduce
    /// partition index, then by key order within each partition.
    pub fn run<I, K, V, O, M, R>(&self, label: &str, input: Vec<I>, map: M, reduce: R) -> Vec<O>
    where
        I: Send,
        K: Hash + Eq + Ord + Send,
        V: Send,
        O: Send,
        M: Fn(I) -> Vec<(K, V)> + Sync,
        R: Fn(K, Vec<V>) -> Vec<O> + Sync,
    {
        let start = Instant::now();
        let _span = snr_telemetry::span!("round", label = label);
        let parts = self.reduce_partitions;
        let (per_part, round) = self
            .run_inner(
                input,
                self.chunk_size,
                &|chunk: Vec<I>| chunk.into_iter().flat_map(&map).collect::<Vec<(K, V)>>(),
                None::<&fn(&K, &mut Vec<V>)>,
                &|k: &K| partition_for(k, parts),
                &|_: &K, _: &V| std::mem::size_of::<K>() + std::mem::size_of::<V>(),
                &|_, groups: Vec<(K, Vec<V>)>| {
                    let mut out = Vec::new();
                    for (k, vs) in groups {
                        out.extend(reduce(k, vs));
                    }
                    out
                },
                None::<&NoSpill>,
            )
            .expect("the in-memory round shape is infallible");
        let mut output = Vec::new();
        for mut part_out in per_part {
            output.append(&mut part_out);
        }
        self.record_round(label, round, output.len(), start);
        output
    }

    /// Runs one aggregation-oriented MapReduce round: chunked mappers, a
    /// combiner, a caller-chosen partitioner, and a per-partition reduce
    /// fold.
    ///
    /// * `map` sees a whole *chunk* of input records at a time, so it can
    ///   amortize per-task setup (decode caches, scratch arenas) and emit
    ///   already-aggregated pairs instead of one record per contribution.
    /// * `combine` runs on every map task's per-partition bucket before the
    ///   shuffle, once per distinct key with that bucket's values; it may
    ///   shrink (or rewrite) the value list in place. Only the post-combine
    ///   records are shuffled, and [`RoundStats::shuffled_records`] /
    ///   [`RoundStats::shuffled_bytes`] report exactly those — the
    ///   pre-combine volume is kept in [`RoundStats::map_output_records`].
    /// * `part_of` routes a key to a reduce partition (`0..reduce_partitions`),
    ///   replacing the default hash partitioner: range-partitioning dense
    ///   keys keeps each partition a contiguous, sorted key interval.
    /// * `bytes_of` reports the payload size of one post-combine record, so
    ///   [`RoundStats::shuffled_bytes`] stays honest for variable-length
    ///   values (a packed score *row* is `4 + 8·entries` bytes, which
    ///   `size_of` cannot see through a `Vec` header).
    /// * `reduce` is called once per partition with *all* of that
    ///   partition's key groups in ascending key order and folds them into a
    ///   single output value, so per-partition state (a selection sink, an
    ///   accumulator) lives across keys without a global materialization.
    ///
    /// Returns one output per partition, in partition order (deterministic).
    #[allow(clippy::too_many_arguments)]
    pub fn run_combined<I, K, V, O, M, C, P, B, R>(
        &self,
        label: &str,
        input: Vec<I>,
        map: M,
        combine: C,
        part_of: P,
        bytes_of: B,
        reduce: R,
    ) -> Vec<O>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        O: Send,
        M: Fn(&[I]) -> Vec<(K, V)> + Sync,
        C: Fn(&K, &mut Vec<V>) + Sync,
        P: Fn(&K) -> usize + Sync,
        B: Fn(&K, &V) -> usize + Sync,
        R: Fn(usize, Vec<(K, Vec<V>)>) -> O + Sync,
    {
        let start = Instant::now();
        let _span = snr_telemetry::span!("round", label = label);
        // Setup-heavy chunked mappers: unless the caller configured a chunk
        // size explicitly, cap the task count at a small multiple of the
        // worker count (see COMBINED_TASKS_PER_WORKER).
        let chunk_size = if self.chunk_size_overridden {
            self.chunk_size
        } else {
            let min_chunk = input.len().div_ceil(self.workers * COMBINED_TASKS_PER_WORKER).max(1);
            self.chunk_size.max(min_chunk)
        };
        let (output, round) = self
            .run_inner(
                input,
                chunk_size,
                &|chunk: Vec<I>| map(&chunk),
                Some(&combine),
                &part_of,
                &bytes_of,
                &reduce,
                None::<&NoSpill>,
            )
            .expect("the in-memory round shape is infallible");
        let outputs = output.len();
        self.record_round(label, round, outputs, start);
        output
    }

    /// [`Engine::run_combined`] with an out-of-core shuffle: `codec`
    /// serializes key groups, and when the round's accumulated post-combine
    /// shuffle bytes would cross the engine's spill budget
    /// ([`Engine::with_spill_budget`]), map tasks flush their sorted
    /// per-partition buckets to checksummed run files and the reduce side
    /// k-way-merges the on-disk runs with the in-memory tail.
    ///
    /// Output is **bit-identical** to [`Engine::run_combined`] at every
    /// budget — only where the shuffle resides changes. With no budget
    /// configured this never touches disk and cannot fail. Spill I/O
    /// failures and run-file corruption (including the injected `spill_io`
    /// / `spill_corrupt` fault sites) surface as a clean
    /// [`EngineError::Spill`] with the round's scratch directory removed
    /// and the round excluded from [`Engine::stats`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_combined_spilling<I, K, V, O, M, C, P, B, R, SC>(
        &self,
        label: &str,
        input: Vec<I>,
        map: M,
        combine: C,
        part_of: P,
        bytes_of: B,
        reduce: R,
        codec: &SC,
    ) -> Result<Vec<O>, EngineError>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        O: Send,
        M: Fn(&[I]) -> Vec<(K, V)> + Sync,
        C: Fn(&K, &mut Vec<V>) + Sync,
        P: Fn(&K) -> usize + Sync,
        B: Fn(&K, &V) -> usize + Sync,
        R: Fn(usize, Vec<(K, Vec<V>)>) -> O + Sync,
        SC: SpillCodec<K, V> + Sync,
    {
        let start = Instant::now();
        let _span = snr_telemetry::span!("round", label = label);
        let chunk_size = if self.chunk_size_overridden {
            self.chunk_size
        } else {
            let min_chunk = input.len().div_ceil(self.workers * COMBINED_TASKS_PER_WORKER).max(1);
            self.chunk_size.max(min_chunk)
        };
        let (output, round) = self.run_inner(
            input,
            chunk_size,
            &|chunk: Vec<I>| map(&chunk),
            Some(&combine),
            &part_of,
            &bytes_of,
            &reduce,
            Some(codec),
        )?;
        let outputs = output.len();
        self.record_round(label, round, outputs, start);
        Ok(output)
    }

    /// Shared round executor: chunked map → per-bucket group (+ optional
    /// combine) → budget check (+ optional spill to disk runs) → shuffle →
    /// per-partition sorted group / k-way run merge → partition fold.
    /// Returns one fold output per partition plus the round's counters
    /// (map tasks, pre/post-combine record counts, key groups, spill
    /// volume). Infallible unless both a codec and a spill budget are
    /// present; the round's scratch directory is removed on every exit
    /// path.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn run_inner<I, K, V, O, MF, CF, PF, BF, RF, SC>(
        &self,
        input: Vec<I>,
        chunk_size: usize,
        map: &MF,
        combine: Option<&CF>,
        part_of: &PF,
        bytes_of: &BF,
        reduce_fold: &RF,
        codec: Option<&SC>,
    ) -> Result<(Vec<O>, RoundCounters), EngineError>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        O: Send,
        MF: Fn(Vec<I>) -> Vec<(K, V)> + Sync,
        CF: Fn(&K, &mut Vec<V>) + Sync,
        PF: Fn(&K) -> usize + Sync,
        BF: Fn(&K, &V) -> usize + Sync,
        RF: Fn(usize, Vec<(K, Vec<V>)>) -> O + Sync,
        SC: SpillCodec<K, V> + Sync,
    {
        // Claim this round's 1-based sequence number up front: it names the
        // scratch subdirectory and is the `R` that `spill_io@roundR` /
        // `spill_corrupt@roundR` fault selectors match.
        let round_no = self.round_seq.fetch_add(1, Ordering::Relaxed) as u32 + 1;
        let spill: Option<SpillState<'_, SC>> = match (codec, self.spill_budget) {
            (Some(codec), Some(budget)) => Some(SpillState {
                codec,
                budget,
                round: round_no,
                round_dir: self.scratch_base().join(format!("round-{round_no}")),
                in_mem: AtomicU64::new(0),
                spilled_bytes: AtomicU64::new(0),
                spilled_runs: AtomicU64::new(0),
                merge_micros: AtomicU64::new(0),
            }),
            _ => None,
        };
        let result = self.run_round(
            input,
            chunk_size,
            map,
            combine,
            part_of,
            bytes_of,
            reduce_fold,
            spill.as_ref(),
        );
        // The run files were fully consumed (or the round failed): remove
        // the round's scratch subdirectory on every exit path, and prune the
        // base scratch dir too once no other round is using it
        // (`remove_dir` is non-recursive, so it only succeeds when empty).
        if let Some(sp) = &spill {
            let _ = std::fs::remove_dir_all(&sp.round_dir);
            if let Some(base) = sp.round_dir.parent() {
                let _ = std::fs::remove_dir(base);
            }
        }
        result
    }

    /// The fallible body of [`Engine::run_inner`]; scratch cleanup stays
    /// with the caller so it runs on error paths too.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn run_round<I, K, V, O, MF, CF, PF, BF, RF, SC>(
        &self,
        input: Vec<I>,
        chunk_size: usize,
        map: &MF,
        combine: Option<&CF>,
        part_of: &PF,
        bytes_of: &BF,
        reduce_fold: &RF,
        spill: Option<&SpillState<'_, SC>>,
    ) -> Result<(Vec<O>, RoundCounters), EngineError>
    where
        I: Send,
        K: Ord + Send,
        V: Send,
        O: Send,
        MF: Fn(Vec<I>) -> Vec<(K, V)> + Sync,
        CF: Fn(&K, &mut Vec<V>) + Sync,
        PF: Fn(&K) -> usize + Sync,
        BF: Fn(&K, &V) -> usize + Sync,
        RF: Fn(usize, Vec<(K, Vec<V>)>) -> O + Sync,
        SC: SpillCodec<K, V> + Sync,
    {
        let input_records = input.len();
        let parts = self.reduce_partitions;

        // ---- Map phase -----------------------------------------------------
        // Split the input into chunks and map them on the worker pool. Each
        // worker emits `parts` buckets of key groups, already sorted by key
        // and combined, so the shuffle only moves grouped records and the
        // reduce-side sort sees nearly-sorted runs.
        let chunks: Vec<(usize, Vec<I>)> =
            split_into_chunks(input, chunk_size).into_iter().enumerate().collect();
        let map_tasks = chunks.len();
        // Each map task tallies its own post-combine shuffle volume
        // (records and bytes) while the data is still hot in its worker, so
        // the single-threaded transpose below only sums per-task scalars.
        // When a spill budget is active the task then tries to *reserve*
        // its bytes against the shared budget; if the reservation would
        // cross it, the task flushes its buckets to disk runs instead and
        // keeps only empty placeholders in memory. Which tasks spill can
        // vary run to run under parallelism (reservation order races), but
        // the merged output is bit-identical regardless.
        type MapOut<K, V> = (TaskTally, Vec<Vec<(K, Vec<V>)>>, Vec<Option<PathBuf>>);
        let map_task = |(task, chunk): (usize, Vec<I>)| -> Result<MapOut<K, V>, EngineError> {
            let pairs = map(chunk);
            let mut tally =
                TaskTally { emitted: pairs.len(), shuffled_records: 0, shuffled_bytes: 0 };
            let mut flat: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
            for (k, v) in pairs {
                let p = part_of(&k);
                assert!(p < parts, "partitioner returned {p} for {parts} partitions");
                flat[p].push((k, v));
            }
            let mut buckets = Vec::with_capacity(parts);
            for bucket in flat {
                let mut groups = group_sorted(bucket);
                for (k, vs) in &mut groups {
                    if let Some(combine) = combine {
                        combine(k, vs);
                    }
                    tally.shuffled_records += vs.len();
                    tally.shuffled_bytes += vs.iter().map(|v| bytes_of(k, v)).sum::<usize>();
                }
                buckets.push(groups);
            }
            let mut run_paths: Vec<Option<PathBuf>> = vec![None; parts];
            if let Some(sp) = spill {
                let bytes = tally.shuffled_bytes as u64;
                let resident = sp.in_mem.fetch_add(bytes, Ordering::Relaxed);
                if resident + bytes > sp.budget {
                    // Over budget: undo the reservation and spill this
                    // task's non-empty buckets to one run file each.
                    sp.in_mem.fetch_sub(bytes, Ordering::Relaxed);
                    std::fs::create_dir_all(&sp.round_dir).map_err(|e| {
                        EngineError::Spill(format!(
                            "creating scratch dir {}: {e}",
                            sp.round_dir.display()
                        ))
                    })?;
                    for (p, bucket) in buckets.iter_mut().enumerate() {
                        if bucket.is_empty() {
                            continue;
                        }
                        let path = sp.round_dir.join(format!("run-t{task}-p{p}.snrr"));
                        let file_bytes = spill::write_run(
                            &path,
                            sp.round,
                            task as u32,
                            p as u32,
                            bucket,
                            sp.codec,
                            &self.faults,
                        )?;
                        snr_telemetry::event!(
                            "spill",
                            round = sp.round,
                            task = task,
                            partition = p,
                            groups = bucket.len(),
                            bytes = file_bytes,
                        );
                        sp.spilled_runs.fetch_add(1, Ordering::Relaxed);
                        *bucket = Vec::new();
                        run_paths[p] = Some(path);
                    }
                    sp.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
            }
            Ok((tally, buckets, run_paths))
        };
        let mapped: Vec<Result<MapOut<K, V>, EngineError>> = if self.workers == 1 || map_tasks <= 1
        {
            chunks.into_iter().map(map_task).collect()
        } else {
            parallel_map(self.workers, chunks, map_task)
        };

        // ---- Shuffle -------------------------------------------------------
        // Transpose the per-task buckets into per-partition columns (cheap:
        // only `Vec` headers move, plus a scalar sum per task). Record
        // movement happens inside the per-partition reduce workers.
        let mut map_output_records = 0usize;
        let mut shuffled_records = 0usize;
        let mut shuffled_bytes = 0usize;
        let mut columns: Vec<Vec<Vec<(K, Vec<V>)>>> =
            (0..parts).map(|_| Vec::with_capacity(map_tasks)).collect();
        let mut run_columns: Vec<Vec<Option<PathBuf>>> =
            (0..parts).map(|_| Vec::with_capacity(map_tasks)).collect();
        for task_result in mapped {
            let (tally, mut worker_buckets, mut worker_runs) = task_result?;
            map_output_records += tally.emitted;
            shuffled_records += tally.shuffled_records;
            shuffled_bytes += tally.shuffled_bytes;
            for p in (0..parts).rev() {
                let bucket = worker_buckets.pop().expect("bucket count mismatch");
                columns[p].push(bucket);
                let run = worker_runs.pop().expect("run column count mismatch");
                run_columns[p].push(run);
            }
        }

        // The spill_corrupt fault site sits between map and reduce: flip
        // one byte of the first run file so the reduce-side checksum pass
        // must catch it (clean error, never wrong output).
        if let Some(sp) = spill {
            if sp.spilled_runs.load(Ordering::Relaxed) > 0 {
                let (hit, seed) = {
                    let reg = self.faults.lock();
                    (reg.fire(FaultSite::SpillCorrupt, None, Some(sp.round)).is_some(), reg.seed())
                };
                if hit {
                    spill::corrupt_first_run(&sp.round_dir, seed);
                }
            }
        }

        // ---- Reduce --------------------------------------------------------
        type ReduceIn<K, V> = (usize, Vec<Vec<(K, Vec<V>)>>, Vec<Option<PathBuf>>);
        let tasks: Vec<ReduceIn<K, V>> = columns
            .into_iter()
            .zip(run_columns)
            .enumerate()
            .map(|(p, (col, runs))| (p, col, runs))
            .collect();
        let reduce_task = |(p, col, runs): ReduceIn<K, V>| -> Result<(usize, O), EngineError> {
            let groups = if runs.iter().any(Option::is_some) {
                // Some of this partition's buckets live on disk: k-way-merge
                // the runs with the in-memory tail, in map-task order.
                let sp = spill.expect("run files only exist when spilling");
                let merge_start = Instant::now();
                let _span = snr_telemetry::span!("spill_merge", partition = p);
                let mut sources: Vec<MergeSource<'_, K, V, SC>> = Vec::with_capacity(col.len());
                for (bucket, run) in col.into_iter().zip(runs) {
                    match run {
                        Some(path) => {
                            sources.push(MergeSource::Disk(RunReader::open(&path, sp.codec)?))
                        }
                        None => sources.push(MergeSource::Mem(bucket.into_iter())),
                    }
                }
                let merged = spill::merge_spill_sources(sources)?;
                sp.merge_micros
                    .fetch_add(merge_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                merged
            } else {
                merge_sorted_buckets(col)
            };
            Ok((groups.len(), reduce_fold(p, groups)))
        };
        let reduced: Vec<Result<(usize, O), EngineError>> = if self.workers == 1 || parts <= 1 {
            tasks.into_iter().map(reduce_task).collect()
        } else {
            parallel_map(self.workers, tasks, reduce_task)
        };
        let mut key_groups = 0usize;
        let mut output: Vec<O> = Vec::with_capacity(parts);
        for r in reduced {
            let (groups, o) = r?;
            key_groups += groups;
            output.push(o);
        }

        let (spilled_bytes, spilled_runs, spill_merge_micros) = match spill {
            Some(sp) => (
                sp.spilled_bytes.load(Ordering::Relaxed) as usize,
                sp.spilled_runs.load(Ordering::Relaxed) as usize,
                sp.merge_micros.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        let counters = RoundCounters {
            input_records,
            map_output_records,
            shuffled_records,
            shuffled_bytes,
            key_groups,
            map_tasks,
            reduce_tasks: parts,
            spilled_bytes,
            spilled_runs,
            spill_merge_micros,
        };
        Ok((output, counters))
    }

    /// The engine's spill scratch base directory; each round uses a
    /// `round-<N>` subdirectory beneath it.
    fn scratch_base(&self) -> PathBuf {
        self.scratch_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("snr-mr-spill-{}", std::process::id()))
        })
    }

    fn record_round(&self, label: &str, c: RoundCounters, output_records: usize, start: Instant) {
        let duration = start.elapsed();
        snr_telemetry::Counter::EngineRounds.add(1);
        snr_telemetry::Counter::ShuffleRecords.add(c.shuffled_records as u64);
        snr_telemetry::Counter::ShuffleBytes.add(c.shuffled_bytes as u64);
        snr_telemetry::Counter::SpilledBytes.add(c.spilled_bytes as u64);
        snr_telemetry::Counter::SpilledRuns.add(c.spilled_runs as u64);
        snr_telemetry::Histogram::RoundMicros.record(duration.as_micros() as u64);
        snr_telemetry::event!(
            "engine_round",
            label = label,
            shuffled_records = c.shuffled_records,
            shuffled_bytes = c.shuffled_bytes,
            reduce_tasks = c.reduce_tasks,
            spilled_runs = c.spilled_runs,
        );
        self.stats.lock().record(RoundStats {
            label: label.to_string(),
            input_records: c.input_records,
            map_output_records: c.map_output_records,
            shuffled_records: c.shuffled_records,
            shuffled_bytes: c.shuffled_bytes,
            key_groups: c.key_groups,
            output_records,
            map_tasks: c.map_tasks,
            reduce_tasks: c.reduce_tasks,
            spilled_bytes: c.spilled_bytes,
            spilled_runs: c.spilled_runs,
            spill_merge_micros: c.spill_merge_micros,
            duration,
        });
    }
}

/// Reads [`ENV_SPILL_BUDGET`]; malformed values are reported and ignored.
fn spill_budget_from_env() -> Option<u64> {
    let raw = std::env::var(ENV_SPILL_BUDGET).ok().filter(|s| !s.is_empty())?;
    match raw.parse::<u64>() {
        Ok(bytes) => Some(bytes),
        Err(_) => {
            snr_telemetry::warn!("ignoring unparseable {ENV_SPILL_BUDGET}={raw:?} (want bytes)");
            None
        }
    }
}

/// Per-round spill bookkeeping shared by the map and reduce workers.
struct SpillState<'a, SC> {
    codec: &'a SC,
    /// Resident post-combine bytes allowed before tasks start spilling.
    budget: u64,
    /// 1-based engine round number (fault selectors, run-file headers).
    round: u32,
    /// This round's scratch subdirectory (created lazily on first spill,
    /// removed on every exit path).
    round_dir: PathBuf,
    /// Post-combine bytes currently reserved as in-memory.
    in_mem: AtomicU64,
    /// Post-combine bytes flushed to disk runs.
    spilled_bytes: AtomicU64,
    /// Run files written.
    spilled_runs: AtomicU64,
    /// Microseconds reduce tasks spent k-way-merging runs.
    merge_micros: AtomicU64,
}

/// Per-map-task shuffle tally, computed inside the task's worker.
struct TaskTally {
    emitted: usize,
    shuffled_records: usize,
    shuffled_bytes: usize,
}

/// Per-round counters accumulated by [`Engine::run_inner`]; the public entry
/// points fill in the label, output count, and duration.
struct RoundCounters {
    input_records: usize,
    map_output_records: usize,
    shuffled_records: usize,
    shuffled_bytes: usize,
    key_groups: usize,
    map_tasks: usize,
    reduce_tasks: usize,
    spilled_bytes: usize,
    spilled_runs: usize,
    spill_merge_micros: u64,
}

/// Groups one bucket of `(key, value)` pairs into `(key, values)` runs in
/// ascending key order. The sort is stable, so values keep their emission
/// order within each key.
fn group_sorted<K: Ord, V>(mut bucket: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    bucket.sort_by(|a, b| a.0.cmp(&b.0));
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in bucket {
        match groups.last_mut() {
            Some((lk, lvs)) if *lk == k => lvs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

/// Merges one partition's grouped buckets — one sorted bucket per map task —
/// into a single ascending key-group list. Buckets arrive in task order and
/// the merge sort is stable, so a key's values concatenate in task order,
/// exactly as the old record-at-a-time grouping produced them.
fn merge_sorted_buckets<K: Ord, V>(buckets: Vec<Vec<(K, Vec<V>)>>) -> Vec<(K, Vec<V>)> {
    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut entries: Vec<(K, Vec<V>)> = Vec::with_capacity(total);
    for bucket in buckets {
        entries.extend(bucket);
    }
    // Nearly-sorted input (each bucket is sorted): the stable merge sort
    // detects the runs, so this is close to a single merge pass.
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut groups: Vec<(K, Vec<V>)> = Vec::with_capacity(entries.len());
    for (k, mut vs) in entries {
        match groups.last_mut() {
            Some((lk, lvs)) if *lk == k => lvs.append(&mut vs),
            _ => groups.push((k, vs)),
        }
    }
    groups
}

/// Splits `input` into chunks of at most `chunk_size` records.
fn split_into_chunks<I>(input: Vec<I>, chunk_size: usize) -> Vec<Vec<I>> {
    if input.is_empty() {
        return Vec::new();
    }
    let mut chunks = Vec::with_capacity(input.len() / chunk_size + 1);
    let mut current = Vec::with_capacity(chunk_size.min(input.len()));
    for record in input {
        current.push(record);
        if current.len() == chunk_size {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Applies `f` to every task on a pool of `workers` crossbeam scoped threads,
/// preserving task order in the result.
fn parallel_map<T, U, F>(workers: usize, tasks: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let task_count = tasks.len();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(task_count);
    slots.resize_with(task_count, || None);
    let slots = Mutex::new(slots);
    let queue = Mutex::new(tasks.into_iter().enumerate().collect::<Vec<_>>());

    crossbeam::scope(|scope| {
        for _ in 0..workers.min(task_count).max(1) {
            scope.spawn(|_| loop {
                let next = queue.lock().pop();
                match next {
                    Some((idx, task)) => {
                        let result = f(task);
                        slots.lock()[idx] = Some(result);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("mapreduce worker thread panicked");

    slots.into_inner().into_iter().map(|slot| slot.expect("task slot not filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count(engine: &Engine, docs: Vec<String>) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = engine.run(
            "wc",
            docs,
            |doc: String| doc.split_whitespace().map(|w| (w.to_string(), 1usize)).collect(),
            |w, ones| vec![(w, ones.len())],
        );
        out.sort();
        out
    }

    /// The same word count as a chunked round with a summing combiner.
    fn word_count_combined(engine: &Engine, docs: Vec<String>) -> Vec<(String, usize)> {
        let parts = engine.reduce_partitions();
        let per_part: Vec<Vec<(String, usize)>> = engine.run_combined(
            "wc-combined",
            docs,
            |chunk: &[String]| {
                chunk
                    .iter()
                    .flat_map(|doc| doc.split_whitespace().map(|w| (w.to_string(), 1usize)))
                    .collect()
            },
            |_w, counts: &mut Vec<usize>| {
                let total: usize = counts.iter().sum();
                counts.clear();
                counts.push(total);
            },
            |w: &String| partition_for(w, parts),
            |w: &String, _: &usize| w.len() + 8,
            |_, groups| {
                groups.into_iter().map(|(w, counts)| (w, counts.iter().sum())).collect::<Vec<_>>()
            },
        );
        let mut out: Vec<(String, usize)> = per_part.into_iter().flatten().collect();
        out.sort();
        out
    }

    #[test]
    fn word_count_single_threaded() {
        let engine = Engine::sequential();
        let out = word_count(&engine, vec!["x y x".into(), "y z".into()]);
        assert_eq!(out, vec![("x".into(), 2), ("y".into(), 2), ("z".into(), 1)]);
    }

    #[test]
    fn word_count_multi_threaded_matches_sequential() {
        let seq = Engine::sequential();
        let par = Engine::new(4).with_chunk_size(1);
        let docs: Vec<String> = (0..50).map(|i| format!("w{} w{} shared", i, i % 7)).collect();
        assert_eq!(word_count(&seq, docs.clone()), word_count(&par, docs));
    }

    #[test]
    fn chunked_map_with_combiner_round_equals_record_at_a_time_round() {
        let docs: Vec<String> =
            (0..60).map(|i| format!("w{} w{} shared again", i % 9, i % 4)).collect();
        for workers in [1usize, 3] {
            let classic = Engine::new(workers).with_chunk_size(7);
            let combined = Engine::new(workers).with_chunk_size(7);
            assert_eq!(
                word_count(&classic, docs.clone()),
                word_count_combined(&combined, docs.clone()),
                "workers={workers}"
            );
            // The combiner collapsed each (task, word) repeat before the
            // shuffle; the classic round shuffled every single `1`.
            let classic_round = &classic.stats().per_round[0];
            let combined_round = &combined.stats().per_round[0];
            assert_eq!(
                classic_round.shuffled_records, classic_round.map_output_records,
                "no combiner: shuffle == map output"
            );
            assert_eq!(combined_round.map_output_records, classic_round.map_output_records);
            assert!(
                combined_round.shuffled_records < combined_round.map_output_records,
                "combiner must shrink the shuffle: {} vs {}",
                combined_round.shuffled_records,
                combined_round.map_output_records
            );
        }
    }

    #[test]
    fn combiner_accounting_is_pinned_on_a_known_workload() {
        // 12 records, 3 distinct keys, chunks of 4 → 3 map tasks of exactly
        // 4 records each. Keys are `i % 3`, so every chunk holds keys
        // {0, 1, 2} with 4 records collapsing to 3 per chunk.
        let engine = Engine::sequential().with_chunk_size(4).with_reduce_partitions(2);
        let input: Vec<u32> = (0..12).collect();
        let out: Vec<(u32, u32)> = engine
            .run_combined(
                "pinned",
                input,
                |chunk: &[u32]| chunk.iter().map(|&x| (x % 3, 1u32)).collect(),
                |_k, ones: &mut Vec<u32>| {
                    let total: u32 = ones.iter().sum();
                    ones.clear();
                    ones.push(total);
                },
                |k: &u32| (*k as usize) % 2,
                |_: &u32, _: &u32| 8,
                |_, groups| {
                    groups
                        .into_iter()
                        .map(|(k, counts)| (k, counts.iter().sum::<u32>()))
                        .collect::<Vec<_>>()
                },
            )
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(out, vec![(0, 4), (2, 4), (1, 4)], "partition order, then key order");
        let stats = engine.stats();
        let round = &stats.per_round[0];
        assert_eq!(round.input_records, 12);
        assert_eq!(round.map_output_records, 12, "mappers emitted one pair per record");
        assert_eq!(round.shuffled_records, 9, "3 tasks x 3 combined keys");
        assert_eq!(round.shuffled_bytes, 9 * 8, "u32 key + u32 value");
        assert_eq!(round.key_groups, 3);
        assert_eq!(stats.total_shuffled_records, 9);
        assert_eq!(stats.total_shuffled_bytes, 72);
        let summary = stats.stats_summary();
        assert!(summary.contains("1 round"), "{summary}");
        assert!(summary.contains("9 shuffled"), "{summary}");
    }

    #[test]
    fn range_partitioned_combined_output_is_globally_key_sorted() {
        use crate::partition::range_partition;
        let engine = Engine::new(3).with_reduce_partitions(4).with_chunk_size(5);
        let input: Vec<u32> = (0..100).rev().collect();
        let per_part: Vec<Vec<u32>> = engine.run_combined(
            "range",
            input,
            |chunk: &[u32]| chunk.iter().map(|&x| (x, ())).collect(),
            |_, _: &mut Vec<()>| {},
            |k: &u32| range_partition(*k, 100, 4),
            |_: &u32, _: &()| 4,
            |_, groups| groups.into_iter().map(|(k, _)| k).collect::<Vec<u32>>(),
        );
        assert_eq!(per_part.len(), 4);
        let flat: Vec<u32> = per_part.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_input_produces_empty_output_and_counts_a_round() {
        let engine = Engine::new(2);
        let out: Vec<(u32, u32)> =
            engine.run("empty", Vec::<u32>::new(), |x| vec![(x, x)], |k, _| vec![(k, k)]);
        assert!(out.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_input_records, 0);
        assert_eq!(stats.total_shuffled_records, 0);
    }

    #[test]
    fn empty_combined_round_still_folds_every_partition() {
        let engine = Engine::new(2).with_reduce_partitions(3);
        let out: Vec<usize> = engine.run_combined(
            "empty-combined",
            Vec::<u32>::new(),
            |chunk: &[u32]| chunk.iter().map(|&x| (x, x)).collect(),
            |_, _: &mut Vec<u32>| {},
            |_: &u32| 0,
            |_: &u32, _: &u32| 8,
            |p, groups| {
                assert!(groups.is_empty());
                p
            },
        );
        assert_eq!(out, vec![0, 1, 2], "one fold output per partition, in order");
    }

    #[test]
    fn stats_track_shuffled_and_output_records() {
        let engine = Engine::new(3).with_chunk_size(2);
        let input: Vec<u32> = (0..10).collect();
        // Each record emits 2 pairs; keys collapse into 5 groups.
        let out: Vec<(u32, usize)> = engine.run(
            "pairs",
            input,
            |x| vec![(x % 5, x), (x % 5, x + 100)],
            |k, vs| vec![(k, vs.len())],
        );
        assert_eq!(out.len(), 5);
        let stats = engine.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_input_records, 10);
        assert_eq!(stats.total_shuffled_records, 20);
        assert_eq!(stats.total_output_records, 5);
        assert_eq!(stats.per_round[0].key_groups, 5);
        assert_eq!(stats.per_round[0].map_output_records, 20);
        assert_eq!(stats.per_round[0].shuffled_bytes, 20 * 8);
        // Every group got both pairs from each of its 2 source records.
        for (_, count) in out {
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn chained_rounds_accumulate_round_count() {
        let engine = Engine::new(2);
        let first: Vec<(u32, u32)> = engine.run(
            "r1",
            vec![1u32, 2, 3],
            |x| vec![(x % 2, x)],
            |k, vs| vec![(k, vs.iter().sum())],
        );
        let second: Vec<(u32, u32)> =
            engine.run("r2", first, |(k, v)| vec![(k, v * 2)], |k, vs| vec![(k, vs.iter().sum())]);
        assert_eq!(engine.stats().rounds, 2);
        assert!(!second.is_empty());
    }

    #[test]
    fn reduce_sees_all_values_for_a_key_exactly_once() {
        let engine = Engine::new(4).with_chunk_size(3).with_reduce_partitions(5);
        let input: Vec<u64> = (0..1000).collect();
        let mut out: Vec<(u64, u64)> = engine.run(
            "sum",
            input,
            |x| vec![(x % 10, x)],
            |k, vs| vec![(k, vs.into_iter().sum::<u64>())],
        );
        out.sort();
        assert_eq!(out.len(), 10);
        for (k, sum) in out {
            // Sum of k, k+10, ..., k+990 = 100*k + 10*(0+10+...+990)/10
            let expected: u64 = (0..100).map(|i| k + 10 * i).sum();
            assert_eq!(sum, expected, "wrong sum for key {k}");
        }
        let stats = engine.stats();
        assert_eq!(stats.per_round[0].reduce_tasks, 5);
        assert!(stats.per_round[0].map_tasks >= 300);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let run = || {
            let engine = Engine::new(4).with_chunk_size(7);
            let input: Vec<u32> = (0..200).collect();
            engine.run(
                "det",
                input,
                |x| vec![(x % 17, x)],
                |k, mut vs| {
                    vs.sort_unstable();
                    vec![(k, vs)]
                },
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reduce_values_preserve_task_order_within_a_key() {
        // Values for one key must arrive in map-task order with each task's
        // emission order preserved — the contract the stable sort-based
        // shuffle keeps from the old HashMap grouping.
        let engine = Engine::new(3).with_chunk_size(2);
        let input: Vec<u32> = (0..20).collect();
        let out: Vec<Vec<u32>> = engine.run("order", input, |x| vec![((), x)], |_, vs| vec![vs]);
        assert_eq!(out, vec![(0..20).collect::<Vec<u32>>()]);
    }

    #[test]
    fn split_into_chunks_covers_all_records() {
        let chunks = split_into_chunks((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        assert_eq!(chunks[3], vec![9]);
        assert!(split_into_chunks(Vec::<u32>::new(), 3).is_empty());
    }

    /// Codec for the `(u32, u64)` spill tests: key, value count, values.
    struct TestCodec;

    impl SpillCodec<u32, u64> for TestCodec {
        fn encode_group(&self, key: &u32, values: &[u64], out: &mut Vec<u8>) {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }

        fn decode_group(&self, bytes: &[u8]) -> Result<(u32, Vec<u64>), String> {
            if bytes.len() < 8 {
                return Err("group too short".into());
            }
            let key = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            if bytes.len() != 8 + 8 * count {
                return Err("group length mismatch".into());
            }
            Ok((
                key,
                bytes[8..]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
    }

    fn spill_scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snr-engine-spill-{}-{name}", std::process::id()))
    }

    /// Runs the reference workload (sorted value lists per key mod 7) on
    /// `engine` through the spillable shape and returns per-partition
    /// output plus the recorded round stats.
    type SpillOutput = Vec<Vec<(u32, Vec<u64>)>>;

    fn spill_workload(engine: &Engine) -> Result<(SpillOutput, RoundStats), EngineError> {
        let parts = engine.reduce_partitions();
        let input: Vec<u64> = (0..200).collect();
        let out = engine.run_combined_spilling(
            "spill-workload",
            input,
            |chunk: &[u64]| chunk.iter().map(|&x| ((x % 7) as u32, x)).collect(),
            |_k, _vs: &mut Vec<u64>| {},
            |k: &u32| partition_for(k, parts),
            |_: &u32, _: &u64| 12,
            |_, groups: Vec<(u32, Vec<u64>)>| groups,
            &TestCodec,
        )?;
        let stats = engine.stats();
        Ok((out, stats.per_round.last().expect("round recorded").clone()))
    }

    #[test]
    fn spill_output_and_stats_are_bit_identical_across_budgets() {
        let scratch = spill_scratch("budgets");
        let make = |budget: Option<u64>| {
            Engine::sequential()
                .with_chunk_size(16)
                .with_reduce_partitions(3)
                .with_spill_budget(budget)
                .with_scratch_dir(&scratch)
        };
        // Reference: unlimited budget — never touches disk.
        let engine = make(None);
        let (reference, ref_round) = spill_workload(&engine).unwrap();
        assert_eq!(ref_round.spilled_runs, 0);
        assert_eq!(ref_round.spilled_bytes, 0);
        assert_eq!(ref_round.spill_merge_micros, 0);
        let total = ref_round.shuffled_bytes as u64;
        assert!(total > 0);

        // Budget exactly at the threshold: resident bytes never *cross* it.
        let engine = make(Some(total));
        let (out, round) = spill_workload(&engine).unwrap();
        assert_eq!(out, reference);
        assert_eq!(round.spilled_runs, 0, "at-threshold budget must not spill");

        // Tiny budget: smaller than any single map task's output, so every
        // task spills — same end state as budget 0.
        let engine = make(Some(16));
        let (out, round) = spill_workload(&engine).unwrap();
        assert_eq!(out, reference);
        assert_eq!(round.spilled_bytes, round.shuffled_bytes, "tiny budget spills every task");

        // Half the total: early tasks stay resident, later ones spill.
        let engine = make(Some(total / 2));
        let (out, round) = spill_workload(&engine).unwrap();
        assert_eq!(out, reference);
        assert!(round.spilled_runs > 0, "half budget must spill");
        assert!(
            round.spilled_bytes > 0 && round.spilled_bytes < round.shuffled_bytes,
            "half budget spills some but not all: {} of {}",
            round.spilled_bytes,
            round.shuffled_bytes
        );

        // Budget 0: every non-empty task spills everything.
        let engine = make(Some(0));
        let (out, round) = spill_workload(&engine).unwrap();
        assert_eq!(out, reference);
        assert_eq!(round.spilled_bytes, round.shuffled_bytes, "budget 0 spills every byte");
        // 200 records / chunks of 16 = 13 map tasks, each hitting up to 3
        // partitions; sequential engine makes the count deterministic.
        assert!(round.spilled_runs >= 13, "every task spills at least one run");

        // The non-spill half of the stats is bit-identical throughout.
        let mut normalized = round.clone();
        normalized.spilled_bytes = 0;
        normalized.spilled_runs = 0;
        normalized.spill_merge_micros = 0;
        normalized.duration = ref_round.duration;
        assert_eq!(normalized, ref_round);

        assert!(!scratch.join("round-1").exists(), "scratch cleaned up");
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn parallel_spilling_engine_matches_sequential_reference() {
        let scratch = spill_scratch("parallel");
        let (reference, _) =
            spill_workload(&Engine::sequential().with_chunk_size(16).with_reduce_partitions(3))
                .unwrap();
        let engine = Engine::new(4)
            .with_chunk_size(16)
            .with_reduce_partitions(3)
            .with_spill_budget(Some(64))
            .with_scratch_dir(&scratch);
        let (out, round) = spill_workload(&engine).unwrap();
        assert_eq!(out, reference, "spilling must never change output");
        assert!(round.spilled_runs > 0);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn unlimited_budget_never_creates_a_scratch_dir() {
        let scratch = spill_scratch("untouched");
        let engine = Engine::sequential().with_scratch_dir(&scratch);
        spill_workload(&engine).unwrap();
        assert!(!scratch.exists(), "no budget, no disk traffic");
    }

    #[test]
    fn spill_io_fault_is_a_clean_error_with_scratch_removed() {
        let scratch = spill_scratch("io-fault");
        let engine = Engine::sequential()
            .with_chunk_size(16)
            .with_spill_budget(Some(0))
            .with_scratch_dir(&scratch)
            .with_fault_registry(snr_faults::FaultRegistry::parse("spill_io@round1").unwrap());
        let err = spill_workload(&engine).expect_err("injected spill_io must fail the round");
        assert!(matches!(err, EngineError::Spill(ref why) if why.contains("spill_io")), "{err}");
        assert!(!scratch.join("round-1").exists(), "scratch removed on error");
        assert_eq!(engine.stats().rounds, 0, "failed rounds are not recorded");
        // The engine stays usable: the next round succeeds (fault fired once).
        let (out, round) = spill_workload(&engine).unwrap();
        assert!(!out.is_empty());
        assert!(round.spilled_runs > 0);
        assert!(!scratch.exists(), "scratch cleaned after the good round too");
    }

    #[test]
    fn spill_corrupt_fault_is_a_clean_error_never_wrong_output() {
        let scratch = spill_scratch("corrupt-fault");
        let engine = Engine::sequential()
            .with_chunk_size(16)
            .with_spill_budget(Some(0))
            .with_scratch_dir(&scratch)
            .with_fault_registry(snr_faults::FaultRegistry::parse("spill_corrupt@round1").unwrap());
        let err = spill_workload(&engine).expect_err("corrupted run must fail the round");
        assert!(
            matches!(err, EngineError::Spill(ref why) if why.contains("checksum") || why.contains("magic")),
            "{err}"
        );
        assert!(!scratch.exists(), "scratch removed on error");
        assert_eq!(engine.stats().rounds, 0);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn spilling_shape_without_budget_equals_run_combined() {
        // The spillable entry point with no budget is a drop-in for
        // run_combined: same output, same stats, zero spill counters.
        let a = Engine::sequential().with_chunk_size(16).with_reduce_partitions(3);
        let (out_a, round_a) = spill_workload(&a).unwrap();
        let parts = 3;
        let b = Engine::sequential().with_chunk_size(16).with_reduce_partitions(parts);
        let out_b: Vec<Vec<(u32, Vec<u64>)>> = b.run_combined(
            "spill-workload",
            (0..200u64).collect(),
            |chunk: &[u64]| chunk.iter().map(|&x| ((x % 7) as u32, x)).collect(),
            |_k, _vs: &mut Vec<u64>| {},
            |k: &u32| partition_for(k, parts),
            |_: &u32, _: &u64| 12,
            |_, groups: Vec<(u32, Vec<u64>)>| groups,
        );
        assert_eq!(out_a, out_b);
        let round_b = b.stats().per_round[0].clone();
        assert_eq!(round_a.shuffled_bytes, round_b.shuffled_bytes);
        assert_eq!(round_a.spilled_runs, 0);
    }

    proptest::proptest! {
        #[test]
        fn spilled_rounds_match_in_memory_rounds_on_random_workloads(
            values in proptest::collection::vec((0u32..9, 0u64..1000), 0..200),
            workers in 1usize..4,
            chunk in 1usize..16,
            budget in 0u64..400,
        ) {
            let parts = 3usize;
            let reference = Engine::sequential().with_chunk_size(chunk).with_reduce_partitions(parts);
            let run = |engine: &Engine, input: Vec<(u32, u64)>| {
                engine.run_combined_spilling(
                    "prop-spill",
                    input,
                    |chunk: &[(u32, u64)]| chunk.to_vec(),
                    |_k, _vs: &mut Vec<u64>| {},
                    |k: &u32| partition_for(k, parts),
                    |_: &u32, _: &u64| 12,
                    |_, groups: Vec<(u32, Vec<u64>)>| groups,
                    &TestCodec,
                )
            };
            let expected = run(&reference, values.clone()).unwrap();
            let scratch = spill_scratch("prop");
            let spilling = Engine::new(workers)
                .with_chunk_size(chunk)
                .with_reduce_partitions(parts)
                .with_spill_budget(Some(budget))
                .with_scratch_dir(&scratch);
            let got = run(&spilling, values).unwrap();
            proptest::prop_assert_eq!(got, expected);
        }

        #[test]
        fn mapreduce_sum_matches_direct_sum(values in proptest::collection::vec(0u64..1000, 0..300),
                                            workers in 1usize..6,
                                            chunk in 1usize..20) {
            let engine = Engine::new(workers).with_chunk_size(chunk);
            let expected: u64 = values.iter().sum();
            let out: Vec<u64> = engine.run(
                "psum",
                values,
                |x| vec![((), x)],
                |_, vs| vec![vs.into_iter().sum::<u64>()],
            );
            let total: u64 = out.into_iter().sum();
            proptest::prop_assert_eq!(total, expected);
        }

        #[test]
        fn combined_and_classic_rounds_agree_on_random_sums(
            values in proptest::collection::vec((0u32..12, 0u64..1000), 0..200),
            workers in 1usize..5,
            chunk in 1usize..16,
            parts in 1usize..5,
        ) {
            let classic = Engine::new(workers).with_chunk_size(chunk).with_reduce_partitions(parts);
            let mut expected: Vec<(u32, u64)> = classic.run(
                "csum",
                values.clone(),
                |(k, v)| vec![(k, v)],
                |k, vs| vec![(k, vs.into_iter().sum::<u64>())],
            );
            expected.sort_unstable();
            let combined = Engine::new(workers).with_chunk_size(chunk).with_reduce_partitions(parts);
            let mut got: Vec<(u32, u64)> = combined
                .run_combined(
                    "csum-combined",
                    values,
                    |chunk: &[(u32, u64)]| chunk.to_vec(),
                    |_, vs: &mut Vec<u64>| {
                        let total = vs.iter().sum();
                        vs.clear();
                        vs.push(total);
                    },
                    |k: &u32| partition_for(k, parts),
                    |_: &u32, _: &u64| 12,
                    |_, groups| {
                        groups
                            .into_iter()
                            .map(|(k, vs)| (k, vs.iter().sum::<u64>()))
                            .collect::<Vec<_>>()
                    },
                )
                .into_iter()
                .flatten()
                .collect();
            got.sort_unstable();
            proptest::prop_assert_eq!(got, expected);
        }
    }
}
