//! Key partitioning for the shuffle phase.
//!
//! Keys are routed to reducers by a stable hash so that a run with the same
//! inputs and the same reducer count always produces the same grouping —
//! determinism matters because the experiment harness compares MapReduce
//! results against the sequential backend bit-for-bit.

use std::hash::{Hash, Hasher};

/// A deterministic, seedless 64-bit hasher (FNV-1a). `std`'s default hasher
/// is randomly seeded per process, which would make shuffles
/// non-reproducible across runs.
#[derive(Clone, Debug)]
pub struct Fnv1aHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher { state: FNV_OFFSET }
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Returns the reducer index (in `0..partitions`) responsible for `key`.
pub fn partition_for<K: Hash>(key: &K, partitions: usize) -> usize {
    debug_assert!(partitions > 0, "partition count must be positive");
    let mut h = Fnv1aHasher::default();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Range partitioner for dense `u32` keys: maps `key` in `0..bound` to one
/// of `partitions` contiguous, equally-wide key intervals.
///
/// Unlike [`partition_for`], consecutive keys land in the same partition, so
/// a reduce partition owns a sorted key *range* — this is what lets
/// [`crate::Engine::run_combined`] callers fold whole candidate rows into a
/// per-partition sink and still concatenate per-partition outputs into
/// globally key-ordered results. Keys at or above `bound` (and everything
/// when `bound` is 0) clamp into the last partition rather than panicking.
pub fn range_partition(key: u32, bound: usize, partitions: usize) -> usize {
    debug_assert!(partitions > 0, "partition count must be positive");
    if bound == 0 {
        return partitions - 1;
    }
    (((key as u64).min(bound as u64 - 1) * partitions as u64) / bound as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_deterministic() {
        for k in 0..100u64 {
            assert_eq!(partition_for(&k, 7), partition_for(&k, 7));
        }
    }

    #[test]
    fn partition_is_in_range() {
        for parts in 1..10usize {
            for k in 0..200u64 {
                assert!(partition_for(&k, parts) < parts);
            }
        }
    }

    #[test]
    fn partition_spreads_keys_reasonably() {
        let parts = 8;
        let mut counts = vec![0usize; parts];
        for k in 0..8000u64 {
            counts[partition_for(&k, parts)] += 1;
        }
        // Each partition should receive a decent share; FNV on sequential
        // integers is not perfectly uniform but must not collapse.
        for &c in &counts {
            assert!(c > 200, "partition too small: {counts:?}");
        }
    }

    #[test]
    fn fnv_hash_matches_reference_values() {
        // Reference: FNV-1a of the empty input is the offset basis.
        let h = Fnv1aHasher::default();
        assert_eq!(h.finish(), FNV_OFFSET);
        // Hashing "a" (0x61): (offset ^ 0x61) * prime
        let mut h = Fnv1aHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn string_and_tuple_keys_partition_consistently() {
        let a = ("node".to_string(), 42u32);
        assert_eq!(partition_for(&a, 13), partition_for(&a.clone(), 13));
    }

    #[test]
    fn range_partition_is_monotone_in_range_and_covers_all_partitions() {
        let (bound, parts) = (1_000usize, 7);
        let mut seen = vec![false; parts];
        let mut prev = 0usize;
        for k in 0..bound as u32 {
            let p = range_partition(k, bound, parts);
            assert!(p < parts, "key {k} out of range: {p}");
            assert!(p >= prev, "partition must not decrease with the key");
            seen[p] = true;
            prev = p;
        }
        assert!(seen.iter().all(|&s| s), "every partition owns some keys: {seen:?}");
    }

    #[test]
    fn range_partition_clamps_out_of_bound_keys() {
        assert_eq!(range_partition(999, 100, 4), 3);
        assert_eq!(range_partition(5, 0, 4), 3);
        assert_eq!(range_partition(0, 1, 1), 0);
    }
}
