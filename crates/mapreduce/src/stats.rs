//! Execution statistics.
//!
//! The paper's efficiency argument is about *round complexity*: User-Matching
//! needs `O(k log D)` MapReduce rounds. The engine keeps enough bookkeeping
//! to verify that claim on real runs — and, since the combiner optimization
//! landed, enough to verify the *data-movement* claim too: shuffle volume is
//! tracked both pre-combine ([`RoundStats::map_output_records`]) and
//! post-combine ([`RoundStats::shuffled_records`] /
//! [`RoundStats::shuffled_bytes`]), so the shuffle shrinkage the combiner
//! mappers buy is measured, not assumed.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics of a single MapReduce round (one job execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Human-readable job label.
    pub label: String,
    /// Number of input records mapped.
    pub input_records: usize,
    /// Number of intermediate `(key, value)` pairs emitted by mappers,
    /// *before* the combiner ran. Equal to [`RoundStats::shuffled_records`]
    /// for rounds without a combiner.
    pub map_output_records: usize,
    /// Number of intermediate `(key, value)` records actually shuffled —
    /// i.e. *after* the per-worker combiner collapsed each map task's
    /// buckets. This is the number that crosses the (simulated) network.
    pub shuffled_records: usize,
    /// In-memory bytes of the shuffled records
    /// (`shuffled_records × size_of::<(K, V)>`'s fields) — the shuffle
    /// volume a real cluster would serialize.
    pub shuffled_bytes: usize,
    /// Number of distinct key groups seen by reducers.
    pub key_groups: usize,
    /// Number of output records emitted by reducers.
    pub output_records: usize,
    /// Number of map tasks (input chunks).
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions).
    pub reduce_tasks: usize,
    /// Post-combine shuffle bytes that were flushed to on-disk spill runs
    /// instead of staying resident (a subset of
    /// [`RoundStats::shuffled_bytes`]; `0` when the round fit in its
    /// memory budget).
    #[serde(default)]
    pub spilled_bytes: usize,
    /// Spill run files written by map tasks this round.
    #[serde(default)]
    pub spilled_runs: usize,
    /// Microseconds reduce tasks spent k-way-merging on-disk runs with the
    /// in-memory tail (`0` when nothing spilled).
    #[serde(default)]
    pub spill_merge_micros: u64,
    /// Wall-clock duration of the round.
    #[serde(with = "duration_micros")]
    pub duration: Duration,
}

mod duration_micros {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = <u64 as serde::Deserialize>::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

/// Aggregate statistics across every round run on an [`crate::Engine`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of rounds (jobs) executed so far.
    pub rounds: usize,
    /// Total records mapped across all rounds.
    pub total_input_records: usize,
    /// Total post-combiner records shuffled across all rounds.
    pub total_shuffled_records: usize,
    /// Total post-combiner shuffle bytes across all rounds.
    pub total_shuffled_bytes: usize,
    /// Total output records across all rounds.
    pub total_output_records: usize,
    /// Per-round details in execution order.
    pub per_round: Vec<RoundStats>,
}

impl EngineStats {
    /// Records a completed round.
    pub fn record(&mut self, round: RoundStats) {
        self.rounds += 1;
        self.total_input_records += round.input_records;
        self.total_shuffled_records += round.shuffled_records;
        self.total_shuffled_bytes += round.shuffled_bytes;
        self.total_output_records += round.output_records;
        self.per_round.push(round);
    }

    /// Total wall-clock time across all rounds.
    pub fn total_duration(&self) -> Duration {
        self.per_round.iter().map(|r| r.duration).sum()
    }

    /// Total pre-combiner mapper output across all rounds; with
    /// [`EngineStats::total_shuffled_records`], the measured combiner
    /// shrinkage factor.
    pub fn total_map_output_records(&self) -> usize {
        self.per_round.iter().map(|r| r.map_output_records).sum()
    }

    /// One-line human-readable account of the engine's work so far, e.g.
    /// `4 rounds: 1203 in, 88411 map-out, 9120 shuffled (109.4 KB), 511 out, 18.3ms`.
    pub fn stats_summary(&self) -> String {
        let plural = if self.rounds == 1 { "round" } else { "rounds" };
        format!(
            "{} {plural}: {} in, {} map-out, {} shuffled ({}), {} out, {:.1?}",
            self.rounds,
            self.total_input_records,
            self.total_map_output_records(),
            self.total_shuffled_records,
            human_bytes(self.total_shuffled_bytes),
            self.total_output_records,
            self.total_duration(),
        )
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        *self = EngineStats::default();
    }
}

/// Formats a byte count with a binary-ish decimal unit (KB/MB/GB).
fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1000.0 && unit + 1 < UNITS.len() {
        value /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(label: &str, input: usize, shuffled: usize, output: usize) -> RoundStats {
        RoundStats {
            label: label.into(),
            input_records: input,
            map_output_records: shuffled * 2,
            shuffled_records: shuffled,
            shuffled_bytes: shuffled * 12,
            key_groups: output,
            output_records: output,
            map_tasks: 2,
            reduce_tasks: 4,
            spilled_bytes: shuffled * 4,
            spilled_runs: 1,
            spill_merge_micros: 25,
            duration: Duration::from_micros(150),
        }
    }

    #[test]
    fn record_accumulates_totals() {
        let mut s = EngineStats::default();
        s.record(round("a", 10, 30, 5));
        s.record(round("b", 20, 10, 7));
        assert_eq!(s.rounds, 2);
        assert_eq!(s.total_input_records, 30);
        assert_eq!(s.total_shuffled_records, 40);
        assert_eq!(s.total_shuffled_bytes, 480);
        assert_eq!(s.total_map_output_records(), 80);
        assert_eq!(s.total_output_records, 12);
        assert_eq!(s.per_round.len(), 2);
        assert_eq!(s.total_duration(), Duration::from_micros(300));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = EngineStats::default();
        s.record(round("a", 1, 1, 1));
        s.clear();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn round_stats_serde_roundtrip() {
        let r = round("serde", 3, 9, 2);
        let json = serde_json::to_string(&r).unwrap();
        let r2: RoundStats = serde_json::from_str(&json).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn round_stats_spill_fields_default_when_absent() {
        // Pre-spill JSON (e.g. an old checkpoint) must still deserialize.
        let mut r = round("old", 3, 9, 2);
        r.spilled_bytes = 0;
        r.spilled_runs = 0;
        r.spill_merge_micros = 0;
        let serde::value::Value::Map(mut fields) = serde::value::to_value(&r) else {
            panic!("RoundStats must serialize as a map");
        };
        fields.retain(|(key, _)| {
            !matches!(key.as_str(), "spilled_bytes" | "spilled_runs" | "spill_merge_micros")
        });
        let r2: RoundStats = serde::value::from_value(serde::value::Value::Map(fields)).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn summary_mentions_rounds_shuffle_and_bytes() {
        let mut s = EngineStats::default();
        s.record(round("a", 10, 30, 5));
        let line = s.stats_summary();
        assert!(line.starts_with("1 round:"), "{line}");
        assert!(line.contains("30 shuffled"), "{line}");
        assert!(line.contains("360 B"), "{line}");
        s.record(round("b", 20, 100_000, 7));
        let line = s.stats_summary();
        assert!(line.starts_with("2 rounds:"), "{line}");
        assert!(line.contains("1.2 MB"), "{line}");
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(999), "999 B");
        assert_eq!(human_bytes(1_500), "1.5 KB");
        assert_eq!(human_bytes(2_000_000), "2.0 MB");
        assert_eq!(human_bytes(3_400_000_000), "3.4 GB");
    }
}
