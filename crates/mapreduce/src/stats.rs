//! Execution statistics.
//!
//! The paper's efficiency argument is about *round complexity*: User-Matching
//! needs `O(k log D)` MapReduce rounds, four per degree bucket. The engine
//! keeps enough bookkeeping to verify that claim on real runs.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics of a single MapReduce round (one job execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Human-readable job label.
    pub label: String,
    /// Number of input records mapped.
    pub input_records: usize,
    /// Number of intermediate `(key, value)` records emitted by mappers.
    pub shuffled_records: usize,
    /// Number of distinct key groups seen by reducers.
    pub key_groups: usize,
    /// Number of output records emitted by reducers.
    pub output_records: usize,
    /// Number of map tasks (input chunks).
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions).
    pub reduce_tasks: usize,
    /// Wall-clock duration of the round.
    #[serde(with = "duration_micros")]
    pub duration: Duration,
}

mod duration_micros {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = <u64 as serde::Deserialize>::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

/// Aggregate statistics across every round run on an [`crate::Engine`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of rounds (jobs) executed so far.
    pub rounds: usize,
    /// Total records mapped across all rounds.
    pub total_input_records: usize,
    /// Total intermediate records shuffled across all rounds.
    pub total_shuffled_records: usize,
    /// Total output records across all rounds.
    pub total_output_records: usize,
    /// Per-round details in execution order.
    pub per_round: Vec<RoundStats>,
}

impl EngineStats {
    /// Records a completed round.
    pub fn record(&mut self, round: RoundStats) {
        self.rounds += 1;
        self.total_input_records += round.input_records;
        self.total_shuffled_records += round.shuffled_records;
        self.total_output_records += round.output_records;
        self.per_round.push(round);
    }

    /// Total wall-clock time across all rounds.
    pub fn total_duration(&self) -> Duration {
        self.per_round.iter().map(|r| r.duration).sum()
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        *self = EngineStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(label: &str, input: usize, shuffled: usize, output: usize) -> RoundStats {
        RoundStats {
            label: label.into(),
            input_records: input,
            shuffled_records: shuffled,
            key_groups: output,
            output_records: output,
            map_tasks: 2,
            reduce_tasks: 4,
            duration: Duration::from_micros(150),
        }
    }

    #[test]
    fn record_accumulates_totals() {
        let mut s = EngineStats::default();
        s.record(round("a", 10, 30, 5));
        s.record(round("b", 20, 10, 7));
        assert_eq!(s.rounds, 2);
        assert_eq!(s.total_input_records, 30);
        assert_eq!(s.total_shuffled_records, 40);
        assert_eq!(s.total_output_records, 12);
        assert_eq!(s.per_round.len(), 2);
        assert_eq!(s.total_duration(), Duration::from_micros(300));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = EngineStats::default();
        s.record(round("a", 1, 1, 1));
        s.clear();
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn round_stats_serde_roundtrip() {
        let r = round("serde", 3, 9, 2);
        let json = serde_json::to_string(&r).unwrap();
        let r2: RoundStats = serde_json::from_str(&json).unwrap();
        assert_eq!(r, r2);
    }
}
