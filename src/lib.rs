//! # social-reconcile
//!
//! A from-scratch Rust reproduction of **Korula & Lattanzi, "An efficient
//! reconciliation algorithm for social networks" (PVLDB 7(5), 2014)**: the
//! User-Matching algorithm for identifying the accounts of the same user
//! across two social networks, together with every substrate it needs —
//! graph storage, network generators, realization/sampling models, an
//! in-memory MapReduce engine, evaluation metrics, and the experiment
//! harness that regenerates every table and figure of the paper's
//! evaluation section.
//!
//! This facade crate simply re-exports the workspace crates under stable
//! module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `snr-graph` | CSR graphs, builders, traversals, statistics, I/O |
//! | [`store`] | `snr-store` | on-disk graph segments, mmap-backed and sharded views |
//! | [`generators`] | `snr-generators` | Erdős–Rényi, preferential attachment, affiliation, R-MAT, temporal, … |
//! | [`sampling`] | `snr-sampling` | realization models, ground truth, seed links |
//! | [`mapreduce`] | `snr-mapreduce` | the in-memory MapReduce engine |
//! | [`core`] | `snr-core` | the User-Matching algorithm and the baseline |
//! | [`metrics`] | `snr-metrics` | evaluation, per-degree curves, experiment records |
//! | [`experiments`] | `snr-experiments` | dataset proxies and experiment runners |
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//! use social_reconcile::prelude::*;
//!
//! // 1. An underlying "true" social network.
//! let mut rng = StdRng::seed_from_u64(1);
//! let network = preferential_attachment(1_000, 10, &mut rng).unwrap();
//!
//! // 2. Two partial copies (each edge survives with probability 0.7) and a
//! //    5% seed set of accounts already linked across the copies.
//! let pair = independent_deletion_symmetric(&network, 0.7, &mut rng).unwrap();
//! let seeds = sample_seeds(&pair, 0.05, &mut rng).unwrap();
//!
//! // 3. Reconcile the two copies.
//! let outcome = UserMatching::new(MatchingConfig::default())
//!     .run(&pair.g1, &pair.g2, &seeds);
//!
//! // 4. Evaluate against the ground truth.
//! let eval = Evaluation::score(&pair, &outcome.links, outcome.links.seed_count());
//! assert!(eval.precision() > 0.95);
//! assert!(eval.good > seeds.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snr_core as core;
pub use snr_experiments as experiments;
pub use snr_generators as generators;
pub use snr_graph as graph;
pub use snr_mapreduce as mapreduce;
pub use snr_metrics as metrics;
pub use snr_sampling as sampling;
pub use snr_store as store;

/// Commonly used items, re-exported for `use social_reconcile::prelude::*`.
pub mod prelude {
    pub use snr_core::{
        Backend, BaselineMatching, Linking, MatchingConfig, MatchingOutcome, UserMatching,
    };
    pub use snr_generators::{
        gnm, gnp, preferential_attachment, rmat, AffiliationConfig, AffiliationNetwork, RmatConfig,
        TemporalGraph,
    };
    pub use snr_graph::{CompactCsr, CsrGraph, GraphBuilder, GraphStats, GraphView, NodeId};
    pub use snr_mapreduce::Engine;
    pub use snr_metrics::{degree_curve, Evaluation};
    pub use snr_sampling::attack::inject_attack;
    pub use snr_sampling::cascade::cascade_realization;
    pub use snr_sampling::community::community_deletion;
    pub use snr_sampling::independent::{independent_deletion, independent_deletion_symmetric};
    pub use snr_sampling::time_slice::{odd_even_split, time_slice_pair};
    pub use snr_sampling::{
        sample_seeds, sample_seeds_degree_biased, GroundTruth, RealizationPair,
    };
    pub use snr_store::{MmapGraph, ShardedGraph};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_reachable() {
        // Compile-time check that the re-exported paths exist and line up.
        let _ = crate::prelude::MatchingConfig::default();
        let _ = crate::core::MatchingConfig::default();
        let _ = crate::graph::NodeId(0);
    }
}
