//! Offline shim for the subset of `rayon` used by this workspace.
//!
//! Provides `par_iter()` over slices and `Vec`s with the
//! `fold(identity, fold_op).reduce(identity, reduce_op)` shape used by the
//! witness-counting and mutual-best kernels. Work is split into one
//! contiguous chunk per available core and executed on `std::thread::scope`
//! threads — genuinely parallel, just without rayon's work stealing.
//!
//! As with real rayon, the grouping of items into fold accumulators is an
//! implementation detail: callers must use commutative/associative
//! reductions (all users here merge hash maps, which qualifies).

#![forbid(unsafe_code)]

/// Iterator-style entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The parallel iterator produced.
    type Iter;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParSlice<'data, T> {
    /// Parallel fold: each worker folds its chunk of items into an
    /// accumulator seeded by `identity()`. Returns the per-chunk
    /// accumulators, to be combined with [`ParFold::reduce`].
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParFold<'data, T, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, &'data T) -> A + Sync,
    {
        ParFold { slice: self.slice, identity, fold_op }
    }

    /// Parallel map collecting into a `Vec` in input order.
    pub fn map<B, F>(self, op: F) -> ParMap<'data, T, F>
    where
        B: Send,
        F: Fn(&'data T) -> B + Sync,
    {
        ParMap { slice: self.slice, op }
    }
}

/// Pending parallel fold; finished by [`ParFold::reduce`].
pub struct ParFold<'data, T, ID, F> {
    slice: &'data [T],
    identity: ID,
    fold_op: F,
}

impl<'data, T, A, ID, F> ParFold<'data, T, ID, F>
where
    T: Sync,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, &'data T) -> A + Sync,
{
    /// Combines the per-chunk accumulators with `reduce_op`, starting from
    /// `reduce_identity()`.
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> A
    where
        RID: Fn() -> A,
        R: Fn(A, A) -> A,
    {
        let accumulators = run_chunked(self.slice, &|chunk| {
            let mut acc = (self.identity)();
            for item in chunk {
                acc = (self.fold_op)(acc, item);
            }
            acc
        });
        let mut result = reduce_identity();
        for acc in accumulators {
            result = reduce_op(result, acc);
        }
        result
    }
}

/// Pending parallel map; finished by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    op: F,
}

impl<'data, T, B, F> ParMap<'data, T, F>
where
    T: Sync,
    B: Send,
    F: Fn(&'data T) -> B + Sync,
{
    /// Collects mapped values, preserving input order.
    pub fn collect(self) -> Vec<B> {
        let chunks =
            run_chunked(self.slice, &|chunk| chunk.iter().map(&self.op).collect::<Vec<B>>());
        let mut out = Vec::with_capacity(self.slice.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Splits `slice` into contiguous chunks (several per available core, so
/// reductions always see multiple partial accumulators and cores stay busy
/// when chunks finish unevenly) and runs `f` on each chunk in a scoped
/// thread. Results come back in chunk order.
fn run_chunked<'data, T, A, F>(slice: &'data [T], f: &F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(&'data [T]) -> A + Sync,
{
    if slice.is_empty() {
        return Vec::new();
    }
    if slice.len() == 1 {
        return vec![f(slice)];
    }
    let pieces = (current_num_threads() * 4).clamp(2, slice.len());
    let chunk_size = slice.len().div_ceil(pieces);
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            slice.chunks(chunk_size).map(|chunk| scope.spawn(move || f(chunk))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Glob-importable traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn fold_reduce_counts_like_sequential() {
        let items: Vec<u32> = (0..10_000).collect();
        let par: HashMap<u32, u32> = items
            .par_iter()
            .fold(HashMap::new, |mut acc, &x| {
                *acc.entry(x % 13).or_insert(0) += 1;
                acc
            })
            .reduce(HashMap::new, |mut a, b| {
                for (k, v) in b {
                    *a.entry(k).or_insert(0) += v;
                }
                a
            });
        let mut seq: HashMap<u32, u32> = HashMap::new();
        for x in &items {
            *seq.entry(x % 13).or_insert(0) += 1;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..5_000).collect();
        let doubled = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_identity() {
        let items: Vec<u32> = Vec::new();
        let sum = items.par_iter().fold(|| 0u32, |a, &b| a + b).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 0);
    }
}
