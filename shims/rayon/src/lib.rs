//! Offline shim for the subset of `rayon` used by this workspace.
//!
//! Provides `par_iter()` over slices and `Vec`s with the
//! `fold(identity, fold_op).reduce(identity, reduce_op)` shape used by the
//! witness-counting and mutual-best kernels. Work is split into one
//! contiguous chunk per available core and executed on `std::thread::scope`
//! threads — genuinely parallel, just without rayon's work stealing.
//!
//! As with real rayon, the grouping of items into fold accumulators is an
//! implementation detail: callers must use commutative/associative
//! reductions (all users here merge hash maps, which qualifies).

#![forbid(unsafe_code)]

/// Iterator-style entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;
    /// The parallel iterator produced.
    type Iter;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParSlice<'data, T> {
    /// Parallel fold: each worker folds its chunk of items into an
    /// accumulator seeded by `identity()`. Returns the per-chunk
    /// accumulators, to be combined with [`ParFold::reduce`].
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParFold<'data, T, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, &'data T) -> A + Sync,
    {
        ParFold { slice: self.slice, identity, fold_op }
    }

    /// Parallel map collecting into a `Vec` in input order.
    pub fn map<B, F>(self, op: F) -> ParMap<'data, T, F>
    where
        B: Send,
        F: Fn(&'data T) -> B + Sync,
    {
        ParMap { slice: self.slice, op }
    }
}

/// Pending parallel fold; finished by [`ParFold::reduce`].
pub struct ParFold<'data, T, ID, F> {
    slice: &'data [T],
    identity: ID,
    fold_op: F,
}

impl<'data, T, A, ID, F> ParFold<'data, T, ID, F>
where
    T: Sync,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, &'data T) -> A + Sync,
{
    /// Combines the per-chunk accumulators with `reduce_op`, starting from
    /// `reduce_identity()`.
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> A
    where
        RID: Fn() -> A,
        R: Fn(A, A) -> A,
    {
        let accumulators = run_chunked(self.slice, &|chunk| {
            let mut acc = (self.identity)();
            for item in chunk {
                acc = (self.fold_op)(acc, item);
            }
            acc
        });
        let mut result = reduce_identity();
        for acc in accumulators {
            result = reduce_op(result, acc);
        }
        result
    }
}

/// Pending parallel map; finished by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    op: F,
}

impl<'data, T, B, F> ParMap<'data, T, F>
where
    T: Sync,
    B: Send,
    F: Fn(&'data T) -> B + Sync,
{
    /// Collects mapped values, preserving input order.
    pub fn collect(self) -> Vec<B> {
        let chunks =
            run_chunked(self.slice, &|chunk| chunk.iter().map(&self.op).collect::<Vec<B>>());
        let mut out = Vec::with_capacity(self.slice.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// A parallel iterator over a borrowed `HashMap`, mirroring rayon's
/// `&HashMap: IntoParallelIterator` support.
///
/// `std`'s `HashMap` exposes no random access or shard handles, so the
/// items are streamed: workers repeatedly pull fixed-size batches from the
/// map's iterator behind a mutex and fold them locally. No up-front
/// materialization of the whole table, one accumulator per worker (not per
/// batch), and the usual shim contract — reductions must be
/// commutative/associative — gives deterministic results.
pub struct ParHashMap<'data, K, V> {
    map: &'data std::collections::HashMap<K, V>,
}

impl<'data, K: Sync + 'data, V: Sync + 'data> IntoParallelRefIterator<'data>
    for std::collections::HashMap<K, V>
{
    type Item = (&'data K, &'data V);
    type Iter = ParHashMap<'data, K, V>;

    fn par_iter(&'data self) -> ParHashMap<'data, K, V> {
        ParHashMap { map: self }
    }
}

impl<'data, K: Sync, V: Sync> ParHashMap<'data, K, V> {
    /// Parallel fold over `(&key, &value)` items; finished by
    /// [`ParHashMapFold::reduce`].
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParHashMapFold<'data, K, V, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, (&'data K, &'data V)) -> A + Sync,
    {
        ParHashMapFold { map: self.map, identity, fold_op }
    }
}

/// Pending parallel fold over a `HashMap`; finished by
/// [`ParHashMapFold::reduce`].
pub struct ParHashMapFold<'data, K, V, ID, F> {
    map: &'data std::collections::HashMap<K, V>,
    identity: ID,
    fold_op: F,
}

/// Items pulled from the shared map iterator per lock acquisition.
const MAP_BATCH: usize = 1_024;

impl<'data, K, V, A, ID, F> ParHashMapFold<'data, K, V, ID, F>
where
    K: Sync,
    V: Sync,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, (&'data K, &'data V)) -> A + Sync,
{
    /// Combines the per-worker accumulators with `reduce_op`, starting from
    /// `reduce_identity()`.
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> A
    where
        RID: Fn() -> A,
        R: Fn(A, A) -> A,
    {
        let len = self.map.len();
        let workers = current_num_threads().clamp(1, len.div_ceil(MAP_BATCH).max(1));
        if len == 0 || workers == 1 {
            let mut acc = (self.identity)();
            for kv in self.map.iter() {
                acc = (self.fold_op)(acc, kv);
            }
            return reduce_op(reduce_identity(), acc);
        }
        let source = std::sync::Mutex::new(self.map.iter());
        let accumulators: Vec<A> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut acc = (self.identity)();
                        let mut batch = Vec::with_capacity(MAP_BATCH);
                        loop {
                            {
                                let mut iter = source.lock().expect("map iterator mutex poisoned");
                                batch.extend(iter.by_ref().take(MAP_BATCH));
                            }
                            if batch.is_empty() {
                                break;
                            }
                            for kv in batch.drain(..) {
                                acc = (self.fold_op)(acc, kv);
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
        });
        let mut result = reduce_identity();
        for acc in accumulators {
            result = reduce_op(result, acc);
        }
        result
    }
}

/// Splits `slice` into contiguous chunks (several per available core, so
/// reductions always see multiple partial accumulators and cores stay busy
/// when chunks finish unevenly) and runs `f` on each chunk in a scoped
/// thread. Results come back in chunk order.
fn run_chunked<'data, T, A, F>(slice: &'data [T], f: &F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(&'data [T]) -> A + Sync,
{
    if slice.is_empty() {
        return Vec::new();
    }
    if slice.len() == 1 {
        return vec![f(slice)];
    }
    let pieces = (current_num_threads() * 4).clamp(2, slice.len());
    let chunk_size = slice.len().div_ceil(pieces);
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            slice.chunks(chunk_size).map(|chunk| scope.spawn(move || f(chunk))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Glob-importable traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn fold_reduce_counts_like_sequential() {
        let items: Vec<u32> = (0..10_000).collect();
        let par: HashMap<u32, u32> = items
            .par_iter()
            .fold(HashMap::new, |mut acc, &x| {
                *acc.entry(x % 13).or_insert(0) += 1;
                acc
            })
            .reduce(HashMap::new, |mut a, b| {
                for (k, v) in b {
                    *a.entry(k).or_insert(0) += v;
                }
                a
            });
        let mut seq: HashMap<u32, u32> = HashMap::new();
        for x in &items {
            *seq.entry(x % 13).or_insert(0) += 1;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..5_000).collect();
        let doubled = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_identity() {
        let items: Vec<u32> = Vec::new();
        let sum = items.par_iter().fold(|| 0u32, |a, &b| a + b).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 0);
    }

    #[test]
    fn hashmap_fold_reduce_matches_sequential() {
        let map: HashMap<u32, u64> = (0..20_000u32).map(|k| (k, (k as u64) * 3)).collect();
        let par = map
            .par_iter()
            .fold(|| 0u64, |acc, (&k, &v)| acc + k as u64 + v)
            .reduce(|| 0, |a, b| a + b);
        let seq: u64 = map.iter().map(|(&k, &v)| k as u64 + v).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_hashmap_yields_identity() {
        let map: HashMap<u32, u32> = HashMap::new();
        let sum = map.par_iter().fold(|| 0u32, |a, (_, &v)| a + v).reduce(|| 7, |a, b| a + b);
        assert_eq!(sum, 7);
    }
}
