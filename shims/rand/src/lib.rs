//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `Rng` / `SeedableRng` traits, `rngs::StdRng`, and `seq::SliceRandom`
//! with the same call signatures as `rand` 0.8. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than the real
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies on
//! determinism for a fixed seed, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (same convention as `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers uniform over the full range).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
    )*};
}

signed_range_impls!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty f64 range");
        let frac: f64 = f64::sample_standard(rng);
        let v = self.start + frac * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty f64 range");
        let frac: f64 = f64::sample_standard(rng);
        start + frac * (end - start)
    }
}

/// Uniform sample in `0..span` by rejection, avoiding modulo bias.
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    hash::mix64(*state)
}

/// Cheap stateless hashing built on the SplitMix64 finalizer — the wider
/// hash API consumers like `snr-sketch` need for MinHash permutations
/// (`k` independent hash functions derived from one base seed, each a call
/// to [`hash::mix64`] on `seed ^ item`).
pub mod hash {
    use super::RngCore;

    /// The SplitMix64 finalizer: a fast, statistically strong 64-bit mixer
    /// (every input bit avalanches to every output bit). Bijective, so
    /// distinct inputs never collide.
    #[inline]
    pub fn mix64(x: u64) -> u64 {
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The SplitMix64 sequence generator itself, exposed as an [`RngCore`]:
    /// a weaker but faster stream than `StdRng`, fit for deriving families
    /// of hash seeds deterministically from one base seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// A stream seeded with `seed`.
        pub fn new(seed: u64) -> SplitMix64 {
            SplitMix64 { state: seed }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(self.state)
        }
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a fixed seed; not the same stream as the real
    /// `rand::rngs::StdRng` (ChaCha12), which no consumer here depends on.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start in the all-zero state.
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }

    /// Alias used by code written against small/fast generators.
    pub type SmallRng = StdRng;
}

/// Random-order operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn splitmix_stream_matches_mix64_of_its_states() {
        use super::hash::{mix64, SplitMix64};
        let mut s = SplitMix64::new(42);
        let mut state = 42u64;
        for _ in 0..32 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            assert_eq!(s.next_u64(), mix64(state));
        }
        // Deterministic per seed, distinct across seeds.
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());

        let mut rng2 = StdRng::seed_from_u64(5);
        let mut v2: Vec<u32> = (0..100).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn works_through_unsized_refs() {
        // The generator crates call sampling methods on `&mut R` with
        // `R: Rng + ?Sized`; make sure that compiles and behaves.
        fn sample_three<R: Rng + ?Sized>(rng: &mut R) -> (u32, f64, usize) {
            (rng.gen_range(0..10u32), rng.gen::<f64>(), rng.gen_range(0..5usize))
        }
        let mut rng = StdRng::seed_from_u64(6);
        let (a, b, c) = sample_three(&mut rng);
        assert!(a < 10);
        assert!((0.0..1.0).contains(&b));
        assert!(c < 5);
    }
}
