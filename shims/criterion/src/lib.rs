//! Offline shim for the subset of the Criterion benchmarking API this
//! workspace uses. Benchmarks compile and run with `cargo bench`, printing
//! mean ± standard deviation and the min/max wall-clock time per iteration;
//! there is no plotting or baseline comparison.
//!
//! So that perf claims are comparable *across* PRs, every benchmark run
//! also writes one JSON record to `target/criterion-json/<label>.json`
//! (`CARGO_TARGET_DIR` is honored; set `CRITERION_SHIM_JSON_DIR` to
//! redirect, or set it to the empty string to disable the files).
//!
//! The iteration budget is intentionally small (time-boxed per benchmark)
//! so `cargo bench` completes quickly; set `CRITERION_SHIM_SAMPLES` to
//! override the per-benchmark sample count, or pass `--quick` (as in
//! `cargo bench ... -- --quick`, mirroring criterion's quick mode) to cap
//! every benchmark at 2 samples for CI smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget per benchmark function (after the single warm-up call).
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Top-level benchmark driver.
pub struct Criterion {
    json_dir: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { json_dir: json_dir_from_env() }
    }
}

impl Criterion {
    /// Overrides (or, with `None`, disables) the directory the per-run JSON
    /// records are written to. The default comes from
    /// `CRITERION_SHIM_JSON_DIR` / the workspace `target/criterion-json`.
    pub fn with_json_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.json_dir = dir;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: default_samples() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.json_dir.as_deref(), &id.into().label, default_samples(), f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

/// True when the benchmark binary was invoked with `--quick` (mirroring
/// criterion's quick mode): sample counts are capped so a whole bench
/// target finishes in CI-smoke time while still emitting JSON records.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the throughput denominator (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.parent.json_dir.as_deref(), &label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.parent.json_dir.as_deref(), &label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Summary statistics of one benchmark's per-iteration times, in seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSummary {
    /// Number of timed iterations.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`0.0` with fewer than two samples).
    pub std_dev: f64,
    /// Fastest iteration.
    pub min: f64,
    /// Slowest iteration.
    pub max: f64,
}

/// Computes [`SampleSummary`] over per-iteration times in seconds. Returns
/// `None` for an empty slice.
pub fn summarize(times: &[f64]) -> Option<SampleSummary> {
    if times.is_empty() {
        return None;
    }
    let n = times.len() as f64;
    let mean = times.iter().sum::<f64>() / n;
    let std_dev = if times.len() < 2 {
        0.0
    } else {
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1.0);
        var.sqrt()
    };
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(SampleSummary { samples: times.len(), mean, std_dev, min, max })
}

/// The build's target directory. Benchmarks run with the *package* root as
/// cwd, so a bare relative `target` would land inside the package; walk up
/// to the workspace root (marked by `Cargo.lock`) instead.
fn default_target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target");
        }
        if !dir.pop() {
            return PathBuf::from("target");
        }
    }
}

/// Default directory for the per-run JSON records; `None` disables them.
fn json_dir_from_env() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("CRITERION_SHIM_JSON_DIR") {
        return if dir.is_empty() { None } else { Some(PathBuf::from(dir)) };
    }
    Some(default_target_dir().join("criterion-json"))
}

/// Minimal JSON string escaping for benchmark labels.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json_record(dir: &std::path::Path, label: &str, s: &SampleSummary) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("criterion shim: cannot create {}: {e}", dir.display());
        return;
    }
    let file_stem: String =
        label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    let path = dir.join(format!("{file_stem}.json"));
    let json = format!(
        "{{\n  \"label\": \"{}\",\n  \"samples\": {},\n  \"mean_s\": {:e},\n  \
         \"std_dev_s\": {:e},\n  \"min_s\": {:e},\n  \"max_s\": {:e}\n}}\n",
        escape_json(label),
        s.samples,
        s.mean,
        s.std_dev,
        s.min,
        s.max
    );
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    json_dir: Option<&std::path::Path>,
    label: &str,
    samples: usize,
    mut f: F,
) {
    let samples = if quick_mode() { samples.min(2) } else { samples };
    let mut bencher = Bencher { sample_times: Vec::new(), samples };
    f(&mut bencher);
    match summarize(&bencher.sample_times) {
        Some(summary) => {
            println!(
                "{label:<60} time: {} ± {}  [min {}, max {}]  ({} iterations)",
                format_time(summary.mean),
                format_time(summary.std_dev),
                format_time(summary.min),
                format_time(summary.max),
                summary.samples
            );
            if let Some(dir) = json_dir {
                write_json_record(dir, label, &summary);
            }
        }
        None => println!("{label:<60} (no iterations executed)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    sample_times: Vec<f64>,
    samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`: one warm-up call, then up to the
    /// configured sample count (stopping early if the time budget runs out).
    /// Each timed call becomes one sample of the reported statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.sample_times.push(start.elapsed().as_secs_f64());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput denominator for a benchmark (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_reports_mean_std_min_max() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.samples, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample std-dev of 1,2,3,4 = sqrt(5/3).
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12, "std {}", s.std_dev);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summarize_handles_degenerate_inputs() {
        assert!(summarize(&[]).is_none());
        let one = summarize(&[0.5]).unwrap();
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.min, one.max);
    }

    #[test]
    fn labels_are_json_escaped() {
        assert_eq!(escape_json("plain/label-1"), "plain/label-1");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn bench_run_writes_a_json_record() {
        // Inject the output directory instead of mutating the process
        // environment (tests run concurrently in one process).
        let dir = std::env::temp_dir().join("criterion-shim-test-json");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Criterion::default().with_json_dir(Some(dir.clone()));
        c.bench_function("json smoke/k=1", |b| b.iter(|| 1 + 1));
        let record =
            std::fs::read_to_string(dir.join("json-smoke-k-1.json")).expect("record written");
        for key in
            ["\"label\"", "\"samples\"", "\"mean_s\"", "\"std_dev_s\"", "\"min_s\"", "\"max_s\""]
        {
            assert!(record.contains(key), "missing {key} in {record}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_api_shapes_compile_and_run() {
        // JSON output disabled: API-shape runs should not leave records in
        // the real target/criterion-json next to genuine bench results.
        let mut c = Criterion::default().with_json_dir(None);
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(format!("k={}", 2), |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| b.iter(|| x * 2));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &1u8, |b, _| b.iter(|| ()));
        group.finish();
    }
}
