//! Offline shim for the subset of the Criterion benchmarking API this
//! workspace uses. Benchmarks compile and run with `cargo bench`, printing
//! a mean wall-clock time per iteration; there is no statistical analysis,
//! plotting, or baseline comparison.
//!
//! The iteration budget is intentionally small (time-boxed per benchmark)
//! so `cargo bench` completes quickly; set `CRITERION_SHIM_SAMPLES` to
//! override the per-benchmark sample count.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget per benchmark function (after the single warm-up call).
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: default_samples() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, default_samples(), f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the throughput denominator (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { iterations: 0, elapsed: Duration::ZERO, samples };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
        println!("{label:<60} time: {}  ({} iterations)", format_time(mean), bencher.iterations);
    } else {
        println!("{label:<60} (no iterations executed)");
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    samples: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`: one warm-up call, then up to the
    /// configured sample count (stopping early if the time budget runs out).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput denominator for a benchmark (accepted, not reported).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shapes_compile_and_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(format!("k={}", 2), |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| b.iter(|| x * 2));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &1u8, |b, _| b.iter(|| ()));
        group.finish();
    }
}
