//! Offline shim for `crossbeam::scope`, backed by `std::thread::scope`.
//!
//! Semantics difference: when a spawned thread panics, `std::thread::scope`
//! resumes the panic at scope exit instead of returning `Err`, so the
//! returned `Result` is always `Ok`. Callers that `.expect()` the result
//! (the only pattern in this workspace) observe the same behavior either
//! way: a worker panic aborts the calling test loudly.

#![forbid(unsafe_code)]

use std::any::Any;

/// Error half of the [`scope`] result (never constructed by this shim; the
/// payload type matches crossbeam's so `.expect()` call sites compile
/// unchanged).
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to every spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle (so it
    /// could spawn further threads), mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_run_and_join() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().expect("worker ok") * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
