//! Offline shim for the subset of `serde_json` used by this workspace:
//! `to_string`, `to_string_pretty`, `from_str`, and the `Error` type,
//! implemented over the `serde` shim's owned value model.

#![forbid(unsafe_code)]

use serde::value::{from_value, to_value, Value};
use serde::{DeserializeOwned, Serialize};
use std::fmt;

/// Error produced by JSON parsing or value conversion.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // round-trips; integral values get a ".0" suffix so the
                // number re-parses as a float.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                // Matches serde_json: non-finite floats serialize as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.consume_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.consume_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.consume_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => {
                Err(Error::new(format!("unexpected `{}` at offset {}", other as char, self.pos)))
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|e| Error::new(format!("bad number: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped.parse::<u64>().map_err(|e| Error::new(format!("bad number: {e}"))).and_then(
                |n| {
                    i64::try_from(n)
                        .map(|n| Value::I64(-n))
                        .map_err(|_| Error::new("integer out of range"))
                },
            )
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|e| Error::new(format!("bad number: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty};
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars_and_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("pi".to_string(), 3.25f64);
        m.insert("whole".to_string(), 2.0f64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"pi":3.25,"whole":2.0}"#);
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ slash \u{0001}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        let back: i64 = from_str("-17").unwrap();
        assert_eq!(back, -17);
        let back: f64 = from_str("2.5e3").unwrap();
        assert_eq!(back, 2500.0);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn tuples_roundtrip_as_arrays() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u32, u32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
