//! Offline shim for the subset of `parking_lot` used by this workspace:
//! a `Mutex` whose `lock()` returns the guard directly (no poisoning
//! `Result`). Backed by `std::sync::Mutex`; a poisoned std mutex is
//! transparently recovered, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns an error;
    /// a poisoned inner lock is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(3u32);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
