//! Offline shim for serde's derive macros, written against the raw
//! `proc_macro` API (the build environment has neither `syn` nor `quote`).
//!
//! Supported item shapes — exactly what this workspace derives:
//!
//! * structs with named fields (optionally `#[serde(with = "module")]` or
//!   `#[serde(default)]` on a field),
//! * tuple structs (newtypes serialize as their single field; wider tuples
//!   as arrays),
//! * enums with unit and struct variants, in serde's externally-tagged
//!   representation (`"Variant"` / `{"Variant": {..}}`).
//!
//! Generics, lifetimes, and other `#[serde(...)]` attributes are rejected
//! with a compile-time panic rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct Name { field: Type, ... }`
    NamedStruct(Vec<Field>),
    /// `struct Name(Type, ...);` with the number of fields.
    TupleStruct(usize),
    /// `enum Name { Unit, Struct { field: Type }, ... }`
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
    /// True for `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring (serialization unchanged).
    default: bool,
}

/// One recognized `#[serde(...)]` field attribute.
enum SerdeAttr {
    With(String),
    Default,
}

struct Variant {
    name: String,
    /// `None` for unit variants; named fields for struct variants.
    fields: Option<Vec<Field>>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    while skip_attribute(&tokens, &mut pos).is_some() {}
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, found `{other}`"),
    };

    Item { name, kind }
}

/// If `tokens[pos]` starts an attribute, skips it and returns its tokens.
fn skip_attribute(tokens: &[TokenTree], pos: &mut usize) -> Option<TokenStream> {
    match (tokens.get(*pos), tokens.get(*pos + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let stream = g.stream();
            *pos += 2;
            Some(stream)
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Extracts `with = "path"` or `default` from a `serde(...)` attribute
/// body, rejecting every other serde attribute so nothing is silently
/// ignored.
fn parse_serde_attr(attr: TokenStream) -> Option<SerdeAttr> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None, // some other attribute (doc, non_exhaustive, ...)
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("malformed #[serde ...] attribute: {other:?}"),
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2)) {
        (Some(TokenTree::Ident(k)), None, None) if k.to_string() == "default" => {
            Some(SerdeAttr::Default)
        }
        (Some(TokenTree::Ident(k)), Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
            if k.to_string() == "with" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            Some(SerdeAttr::With(raw.trim_matches('"').to_string()))
        }
        _ => panic!(
            "serde shim derive supports only #[serde(with = \"module\")] and \
             #[serde(default)], found #[serde({})]",
            inner.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
        ),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();

    while pos < tokens.len() {
        let mut with = None;
        let mut default = false;
        while let Some(attr) = skip_attribute(&tokens, &mut pos) {
            match parse_serde_attr(attr) {
                Some(SerdeAttr::With(path)) => with = Some(path),
                Some(SerdeAttr::Default) => default = true,
                None => {}
            }
        }
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, with, default });
    }
    fields
}

/// Advances past a type expression up to (and over) the next top-level `,`.
/// Tracks `<`/`>` depth so commas inside generic arguments don't split.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();

    while pos < tokens.len() {
        while skip_attribute(&tokens, &mut pos).is_some() {}
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple variant `{name}`")
            }
            _ => None,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `expr` evaluates a field (accessed as `{access}`) to a `Value`.
fn field_to_value_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!(
            "match {path}::serialize(&{access}, ::serde::value::ValueSerializer) {{ \
               ::std::result::Result::Ok(v) => v, \
               ::std::result::Result::Err(e) => match e {{}}, \
             }}"
        ),
        None => format!("::serde::value::to_value(&{access})"),
    }
}

/// `expr` deserializes `Value` expression `{value}` into the field's type,
/// early-returning a `__D::Error` on failure.
fn field_from_value_expr(field: &Field, value: &str) -> String {
    let convert = match &field.with {
        Some(path) => {
            format!("{path}::deserialize(::serde::value::ValueDeserializer::new({value}))")
        }
        None => format!("::serde::value::from_value({value})"),
    };
    format!(
        "match {convert} {{ \
           ::std::result::Result::Ok(v) => v, \
           ::std::result::Result::Err(e) => \
             return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(e)), \
         }}"
    )
}

/// Statements pushing each field of a named-field collection into
/// `__fields`, reading from `{prefix}{name}`.
fn push_named_fields(fields: &[Field], prefix: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let value = field_to_value_expr(f, &format!("{prefix}{}", f.name));
            format!("__fields.push((::std::string::String::from(\"{}\"), {value}));", f.name)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Struct-literal body extracting each named field from `__map`. Fields
/// marked `#[serde(default)]` fall back to `Default::default()` when the
/// key is absent (a present-but-malformed value still errors).
fn extract_named_fields(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            if f.default {
                let convert = field_from_value_expr(f, "v");
                return format!(
                    "{}: match ::serde::value::take_field(&mut __map, \"{}\") {{ \
                       ::std::result::Result::Ok(v) => {convert}, \
                       ::std::result::Result::Err(_) => ::std::default::Default::default(), \
                     }},",
                    f.name, f.name
                );
            }
            let take = format!(
                "match ::serde::value::take_field(&mut __map, \"{}\") {{ \
                   ::std::result::Result::Ok(v) => v, \
                   ::std::result::Result::Err(e) => \
                     return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(e)), \
                 }}",
                f.name
            );
            format!("{}: {},", f.name, field_from_value_expr(f, &take))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes = push_named_fields(fields, "self.");
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 serializer.serialize_value(::serde::value::Value::Map(__fields))"
            )
        }
        Kind::TupleStruct(1) => {
            "serializer.serialize_value(::serde::value::to_value(&self.0))".to_string()
        }
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::value::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serializer.serialize_value(::serde::value::Value::Seq(::std::vec![{items}]))")
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => serializer.serialize_value(\
                               ::serde::value::Value::Str(::std::string::String::from(\"{vname}\"))),"
                        ),
                        Some(fields) => {
                            let bindings = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes = push_named_fields(fields, "");
                            format!(
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                   let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = \
                                       ::std::vec::Vec::new();\n\
                                   {pushes}\n\
                                   serializer.serialize_value(::serde::value::Value::Map(::std::vec![\
                                       (::std::string::String::from(\"{vname}\"), \
                                        ::serde::value::Value::Map(__fields))]))\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn serialize<__S: ::serde::Serializer>(&self, serializer: __S) \
               -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let extract = extract_named_fields(fields);
            format!(
                "let mut __map = match __value {{\n\
                   ::serde::value::Value::Map(m) => m,\n\
                   other => return ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                       ::std::format!(\"expected object for struct {name}, found {{other:?}}\"))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{extract}\n}})"
            )
        }
        Kind::TupleStruct(1) => {
            let inner = Field { name: String::new(), with: None, default: false };
            let expr = field_from_value_expr(&inner, "__value");
            format!("::std::result::Result::Ok({name}({expr}))")
        }
        Kind::TupleStruct(n) => {
            let extracts = (0..*n)
                .map(|_| {
                    let inner = Field { name: String::new(), with: None, default: false };
                    let expr =
                        field_from_value_expr(&inner, "__items.next().expect(\"length checked\")");
                    format!("{expr},")
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let __seq = match __value {{\n\
                   ::serde::value::Value::Seq(s) if s.len() == {n} => s,\n\
                   other => return ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                       ::std::format!(\"expected {n}-element array for {name}, found {{other:?}}\"))),\n\
                 }};\n\
                 let mut __items = __seq.into_iter();\n\
                 ::std::result::Result::Ok({name}({extracts}))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let struct_arms = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vname, fields)| {
                    let extract = extract_named_fields(fields);
                    format!(
                        "\"{vname}\" => {{\n\
                           let mut __map = match __inner {{\n\
                             ::serde::value::Value::Map(m) => m,\n\
                             other => return ::std::result::Result::Err(\
                               <__D::Error as ::serde::de::Error>::custom(\
                                 ::std::format!(\"expected object for variant {vname}, found {{other:?}}\"))),\n\
                           }};\n\
                           ::std::result::Result::Ok({name}::{vname} {{\n{extract}\n}})\n\
                         }}"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __value {{\n\
                   ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\n\
                     other => ::std::result::Result::Err(\
                       <__D::Error as ::serde::de::Error>::custom(\
                         ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                   }},\n\
                   ::serde::value::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                     let (__tag, __inner) = __m.remove(0);\n\
                     match __tag.as_str() {{\n\
                       {struct_arms}\n\
                       other => ::std::result::Result::Err(\
                         <__D::Error as ::serde::de::Error>::custom(\
                           ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                     }}\n\
                   }}\n\
                   other => ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(\
                       ::std::format!(\"invalid representation for enum {name}: {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D) \
               -> ::std::result::Result<Self, __D::Error> {{\n\
             let __value = ::serde::Deserializer::take_value(deserializer)?;\n\
             {body}\n\
           }}\n\
         }}"
    )
}
