//! Offline shim for the subset of `serde` used by this workspace.
//!
//! The design collapses serde's visitor-based data model into one owned
//! [`value::Value`] tree (the shapes JSON can express). `Serialize` builds a
//! `Value`; `Deserialize` consumes one. The real trait signatures are kept —
//! `fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>` —
//! so handwritten `#[serde(with = "...")]` modules compile unchanged, and
//! the companion `serde_derive` shim provides `#[derive(Serialize,
//! Deserialize)]` for the struct/enum shapes in this workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data.
///
/// Unlike real serde there is a single required method taking an owned
/// [`value::Value`]; the named `serialize_*` helpers are provided so
/// handwritten `with`-modules written against serde's API still compile.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Serialization error type.
    type Error;

    /// Consumes an owned value tree.
    fn serialize_value(self, value: value::Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::Bool(v))
    }

    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::U64(v))
    }

    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::I64(v))
    }

    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::F64(v))
    }

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::Str(v.to_string()))
    }
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A source of deserialized data: hands out one owned [`value::Value`].
pub trait Deserializer<'de>: Sized {
    /// Deserialization error type.
    type Error: de::Error;

    /// Takes the underlying value tree.
    fn take_value(self) -> Result<value::Value, Self::Error>;
}

/// Deserialization error plumbing.
pub mod de {
    /// Trait every [`super::Deserializer`] error implements, so generated
    /// and handwritten code can construct errors generically.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Serialization error plumbing (mirror of [`de`], rarely needed).
pub mod ser {
    /// Trait for constructing serializer errors generically.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// The owned value model plus the glue used by derived code.
pub mod value {
    use super::{de, Deserialize, Deserializer, Serialize, Serializer};
    use std::convert::Infallible;
    use std::fmt;

    /// An owned tree covering every shape JSON can express.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Non-negative integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating-point number.
        F64(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object; insertion-ordered.
        Map(Vec<(String, Value)>),
    }

    /// Error produced when a [`Value`] does not match the requested shape.
    #[derive(Clone, Debug)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl de::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    /// [`Serializer`] producing an owned [`Value`]; cannot fail.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Infallible;

        fn serialize_value(self, value: Value) -> Result<Value, Infallible> {
            Ok(value)
        }
    }

    /// [`Deserializer`] reading from an owned [`Value`].
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps a value for deserialization.
        pub fn new(value: Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = Error;

        fn take_value(self) -> Result<Value, Error> {
            Ok(self.value)
        }
    }

    /// Serializes any [`Serialize`] type into a [`Value`].
    pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
        match v.serialize(ValueSerializer) {
            Ok(value) => value,
            Err(never) => match never {},
        }
    }

    /// Deserializes any [`Deserialize`] type from a [`Value`].
    pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
        T::deserialize(ValueDeserializer::new(value))
    }

    /// Removes the named field from an object's entry list; used by derived
    /// struct deserializers.
    pub fn take_field(map: &mut Vec<(String, Value)>, name: &str) -> Result<Value, Error> {
        match map.iter().position(|(k, _)| k == name) {
            Some(i) => Ok(map.remove(i).1),
            None => Err(Error(format!("missing field `{name}`"))),
        }
    }
}

use value::Value;

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for the primitives and std types
// this workspace serializes.
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let err = |v: &Value| {
                    <D::Error as de::Error>::custom(format!(
                        "expected {} integer, found {v:?}", stringify!($t)
                    ))
                };
                match value {
                    Value::U64(n) => <$t>::try_from(n).map_err(|_| err(&Value::U64(n))),
                    Value::I64(n) => <$t>::try_from(n).map_err(|_| err(&Value::I64(n))),
                    other => Err(err(&other)),
                }
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_u64(v as u64)
                } else {
                    serializer.serialize_i64(v)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let err = |v: &Value| {
                    <D::Error as de::Error>::custom(format!(
                        "expected {} integer, found {v:?}", stringify!($t)
                    ))
                };
                match value {
                    Value::U64(n) => <$t>::try_from(n).map_err(|_| err(&Value::U64(n))),
                    Value::I64(n) => <$t>::try_from(n).map_err(|_| err(&Value::I64(n))),
                    other => Err(err(&other)),
                }
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_f64(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::F64(v) => Ok(v as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(<D::Error as de::Error>::custom(format!(
                        "expected float, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => {
                Err(<D::Error as de::Error>::custom(format!("expected bool, found {other:?}")))
            }
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => {
                Err(<D::Error as de::Error>::custom(format!("expected string, found {other:?}")))
            }
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => serializer.serialize_value(value::to_value(v)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => value::from_value(other).map(Some).map_err(<D::Error as de::Error>::custom),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(value::to_value).collect()))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| value::from_value(v).map_err(<D::Error as de::Error>::custom))
                .collect(),
            other => {
                Err(<D::Error as de::Error>::custom(format!("expected array, found {other:?}")))
            }
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(value::to_value).collect()))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer
            .serialize_value(Value::Seq(vec![value::to_value(&self.0), value::to_value(&self.1)]))
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = value::from_value(it.next().expect("len checked"))
                    .map_err(<D::Error as de::Error>::custom)?;
                let b = value::from_value(it.next().expect("len checked"))
                    .map_err(<D::Error as de::Error>::custom)?;
                Ok((a, b))
            }
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(vec![
            value::to_value(&self.0),
            value::to_value(&self.1),
            value::to_value(&self.2),
        ]))
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned, C: DeserializeOwned> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) if items.len() == 3 => {
                let mut it = items.into_iter();
                let a = value::from_value(it.next().expect("len checked"))
                    .map_err(<D::Error as de::Error>::custom)?;
                let b = value::from_value(it.next().expect("len checked"))
                    .map_err(<D::Error as de::Error>::custom)?;
                let c = value::from_value(it.next().expect("len checked"))
                    .map_err(<D::Error as de::Error>::custom)?;
                Ok((a, b, c))
            }
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected 3-element array, found {other:?}"
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(
            self.iter().map(|(k, v)| (k.clone(), value::to_value(v))).collect(),
        ))
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    value::from_value(v).map(|v| (k, v)).map_err(<D::Error as de::Error>::custom)
                })
                .collect(),
            other => {
                Err(<D::Error as de::Error>::custom(format!("expected object, found {other:?}")))
            }
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort keys so output is deterministic, matching BTreeMap behavior.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), value::to_value(v))).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_value(Value::Map(entries))
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    value::from_value(v).map(|v| (k, v)).map_err(<D::Error as de::Error>::custom)
                })
                .collect(),
            other => {
                Err(<D::Error as de::Error>::custom(format!("expected object, found {other:?}")))
            }
        }
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same representation as serde's std impl: {"secs": .., "nanos": ..}.
        serializer.serialize_value(Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(mut entries) => {
                let secs: u64 = value::take_field(&mut entries, "secs")
                    .and_then(value::from_value)
                    .map_err(<D::Error as de::Error>::custom)?;
                let nanos: u32 = value::take_field(&mut entries, "nanos")
                    .and_then(value::from_value)
                    .map_err(<D::Error as de::Error>::custom)?;
                Ok(Duration::new(secs, nanos))
            }
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected {{secs, nanos}} object, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::value::{from_value, to_value, Value};
    use std::collections::BTreeMap;
    use std::time::Duration;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(to_value(&42u32), Value::U64(42));
        assert_eq!(from_value::<u32>(Value::U64(42)).unwrap(), 42);
        assert_eq!(to_value(&-3i64), Value::I64(-3));
        assert_eq!(from_value::<i64>(Value::I64(-3)).unwrap(), -3);
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value(&"hi".to_string()), Value::Str("hi".into()));
        let v: Vec<u32> = from_value(to_value(&vec![1u32, 2, 3])).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(from_value::<u8>(Value::U64(300)).is_err());
        assert!(from_value::<u32>(Value::I64(-1)).is_err());
    }

    #[test]
    fn option_and_map_roundtrip() {
        let vals: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let back: Vec<Option<u32>> = from_value(to_value(&vals)).unwrap();
        assert_eq!(back, vals);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), 2.5f64);
        let back: BTreeMap<String, f64> = from_value(to_value(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 123_456_789);
        let back: Duration = from_value(to_value(&d)).unwrap();
        assert_eq!(back, d);
    }
}
