//! Offline shim for the subset of the `bytes` crate used by this workspace:
//! `Bytes` / `BytesMut` as thin wrappers over `Vec<u8>`, plus the `Buf` /
//! `BufMut` little-endian accessor traits implemented for `&[u8]` and
//! `BytesMut` respectively.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side accessors that consume from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer, advancing it.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side accessors that append to a buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
