//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! `proptest! { #[test] fn name(x in strategy, ...) { body } }` expands to a
//! plain `#[test]` that draws the requested number of random cases from the
//! strategies and runs the body for each. There is no shrinking: a failing
//! case panics with the values baked into the assertion message.
//!
//! Supported strategies: integer and float ranges (`0u32..30`), tuples of
//! strategies up to arity 3 (nested tuples work), and
//! `collection::vec(elem, len_range)`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of cases run per property when not overridden via
/// `ProptestConfig::with_cases`.
pub const DEFAULT_CASES: u32 = 64;

/// A source of random test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic generator seeded from the test's name, so each
    /// property sees a stable stream of cases across runs.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Produces values of `Self::Value` for test cases.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n =
                if self.len.start < self.len.end { self.len.generate(rng) } else { self.len.start };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration and common imports.
pub mod prelude {
    pub use super::{Strategy, TestRng};

    /// Per-property configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: super::DEFAULT_CASES }
        }
    }
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain test running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::prelude::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)
     $( #[test] fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ( $( $arg, )* ) =
                        ( $( $crate::Strategy::generate(&($strategy), &mut __rng), )* );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u32..30, (a, b) in (0u64..5, 0i32..3)) {
            crate::prop_assert!(x < 30);
            crate::prop_assert!(a < 5);
            crate::prop_assert!((0..3).contains(&b));
        }
    }

    crate::proptest! {
        #![proptest_config(crate::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_respects_length(mut xs in crate::collection::vec((0u32..10, 0u32..10), 0..50)) {
            crate::prop_assert!(xs.len() < 50);
            xs.sort();
            for (a, b) in xs {
                crate::prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        use crate::Strategy;
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
