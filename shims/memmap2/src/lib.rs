//! Offline shim for the subset of `memmap2` used by this workspace.
//!
//! Provides read-only, whole-file memory mappings: [`Mmap::map`] /
//! [`MmapOptions::map`] plus [`Mmap::advise`], matching the upstream API so
//! the shim can be swapped for the real crate with one line in the root
//! `Cargo.toml`. On Unix the mapping goes through raw `extern "C"`
//! declarations of `mmap`/`munmap`/`madvise` (the container has no libc
//! crate either); elsewhere the file is read into an 8-byte-aligned heap
//! buffer so the API keeps working, just without the shared page cache.
//!
//! Only the read-only surface is implemented — no `MmapMut`, no partial
//! ranges — because the graph segments in `snr-store` are immutable once
//! written.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// Access-pattern hint forwarded to `madvise` (a no-op on the fallback
/// implementation). Mirrors `memmap2::Advice`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// No special treatment (`MADV_NORMAL`).
    Normal,
    /// Expect random page references (`MADV_RANDOM`).
    Random,
    /// Expect sequential page references (`MADV_SEQUENTIAL`).
    Sequential,
    /// Expect access in the near future (`MADV_WILLNEED`).
    WillNeed,
}

/// Builder mirroring `memmap2::MmapOptions`; only whole-file read-only
/// mappings are supported.
#[derive(Clone, Copy, Debug, Default)]
pub struct MmapOptions {}

impl MmapOptions {
    /// Creates a new set of (default) options.
    pub fn new() -> MmapOptions {
        MmapOptions {}
    }

    /// Maps `file` read-only in its entirety.
    ///
    /// # Safety
    /// As with the real `memmap2`, the caller must ensure the underlying
    /// file is not truncated or mutated while the map is alive; Rust cannot
    /// see such external writes and they would invalidate the returned
    /// slice.
    pub unsafe fn map(&self, file: &File) -> io::Result<Mmap> {
        Mmap::map(file)
    }
}

#[cfg(unix)]
mod imp {
    use super::Advice;
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 0x02;
    const MADV_NORMAL: c_int = 0;
    const MADV_RANDOM: c_int = 1;
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// A read-only memory map of an entire file.
    #[derive(Debug)]
    pub struct Mmap {
        /// Page-aligned base address; dangling (never dereferenced) when
        /// `len == 0` — `mmap(2)` rejects zero-length mappings.
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable shared memory: no interior mutability, so
    // handing references across threads is as safe as sharing a `&[u8]`.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in its entirety.
        ///
        /// # Safety
        /// The file must not be truncated or mutated while the map is alive.
        pub unsafe fn map(file: &File) -> io::Result<Mmap> {
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"));
            }
            let len = len as usize;
            if len == 0 {
                return Ok(Mmap { ptr: std::ptr::null_mut(), len: 0 });
            }
            let ptr = mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0);
            // MAP_FAILED is (void *)-1.
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// Forwards an access-pattern hint to `madvise(2)`.
        pub fn advise(&self, advice: Advice) -> io::Result<()> {
            self.advise_range(advice, 0, self.len)
        }

        /// Forwards an access-pattern hint for `len` bytes starting at
        /// `offset` to `madvise(2)`. `madvise` requires a page-aligned
        /// address, so the range is widened down to the containing page
        /// boundary and clamped to the mapping; an empty (or fully
        /// out-of-range) request is a no-op.
        pub fn advise_range(&self, advice: Advice, offset: usize, len: usize) -> io::Result<()> {
            const PAGE: usize = 4096;
            if self.len == 0 || len == 0 || offset >= self.len {
                return Ok(());
            }
            let start = offset - (offset % PAGE);
            let end = offset.saturating_add(len).min(self.len);
            let flag = match advice {
                Advice::Normal => MADV_NORMAL,
                Advice::Random => MADV_RANDOM,
                Advice::Sequential => MADV_SEQUENTIAL,
                Advice::WillNeed => MADV_WILLNEED,
            };
            let addr = unsafe { (self.ptr as *mut u8).add(start) };
            if unsafe { madvise(addr as *mut c_void, end - start, flag) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // Failure here is unrecoverable and leaks the mapping; like
                // the real crate, ignore it rather than panic in drop.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Advice;
    use std::fs::File;
    use std::io::{self, Read};

    /// Fallback "map": the file copied into an 8-byte-aligned heap buffer
    /// (`Vec<u64>` backing), so consumers that reinterpret aligned regions
    /// of the buffer keep working.
    #[derive(Debug)]
    pub struct Mmap {
        buf: Vec<u64>,
        len: usize,
    }

    impl Mmap {
        /// "Maps" `file` by copying it into an aligned heap buffer.
        ///
        /// # Safety
        /// None needed here; `unsafe` only mirrors the Unix signature.
        pub unsafe fn map(file: &File) -> io::Result<Mmap> {
            let mut bytes = Vec::new();
            let mut f = file.try_clone()?;
            f.read_to_end(&mut bytes)?;
            let len = bytes.len();
            let mut buf = vec![0u64; len.div_ceil(8)];
            // Safety-free copy: u64 buffer viewed as bytes.
            for (i, b) in bytes.into_iter().enumerate() {
                let word = &mut buf[i / 8];
                *word |= (b as u64) << (8 * (i % 8));
            }
            Ok(Mmap { buf, len })
        }

        /// Accepted and ignored; there is no kernel mapping to advise.
        pub fn advise(&self, _advice: Advice) -> io::Result<()> {
            Ok(())
        }

        /// Accepted and ignored; there is no kernel mapping to advise.
        pub fn advise_range(&self, _advice: Advice, _offset: usize, _len: usize) -> io::Result<()> {
            Ok(())
        }

        /// The buffered bytes.
        pub fn as_slice(&self) -> &[u8] {
            let ptr = self.buf.as_ptr() as *const u8;
            unsafe { std::slice::from_raw_parts(ptr, self.len) }
        }
    }
}

pub use imp::Mmap;

impl Mmap {
    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for an empty (zero-length) mapping.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_readonly() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        map.advise(Advice::Random).unwrap();
        map.advise(Advice::Sequential).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advise_range_accepts_unaligned_and_out_of_range_requests() {
        let path = temp_path("advise-range");
        let payload = vec![3u8; 4096 * 2 + 100];
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        // Unaligned offsets are widened down to a page boundary; lengths are
        // clamped to the mapping; empty/out-of-range requests are no-ops.
        map.advise_range(Advice::WillNeed, 0, map.len()).unwrap();
        map.advise_range(Advice::WillNeed, 123, 5000).unwrap();
        map.advise_range(Advice::Sequential, 4097, usize::MAX).unwrap();
        map.advise_range(Advice::Random, 0, 0).unwrap();
        map.advise_range(Advice::WillNeed, map.len() + 10, 4).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { MmapOptions::new().map(&file) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        map.advise(Advice::WillNeed).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload = vec![7u8; 4096 * 3];
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let m = &map;
                    s.spawn(move || {
                        m[i * 1024..(i + 1) * 1024].iter().map(|&b| b as u64).sum::<u64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, 7 * 4096);
        std::fs::remove_file(&path).unwrap();
    }
}
