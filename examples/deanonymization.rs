//! Network de-anonymization (the Narayanan–Shmatikov setting).
//!
//! ```text
//! cargo run --release --example deanonymization
//! ```
//!
//! The paper positions User-Matching as "the first really scalable algorithm
//! for network de-anonymization with theoretical guarantees". This example
//! plays that scenario: an "anonymized" release of a social graph (node ids
//! scrambled, 70% of edges present) is attacked with an auxiliary crawl of
//! the same underlying network (60% of edges) plus a handful of users whose
//! identity the attacker already knows (high-degree public figures). It then
//! compares User-Matching against the plain common-neighbor baseline, which
//! mirrors the comparison the paper draws with prior de-anonymization work.

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_reconcile::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(13_071_690);

    println!("building the hidden social network…");
    let network = preferential_attachment(15_000, 12, &mut rng).expect("valid parameters");

    // The released (anonymized) graph and the attacker's auxiliary graph are
    // two partial observations of the same network.
    let pair = independent_deletion(&network, 0.7, 0.6, &mut rng).expect("valid probabilities");
    println!(
        "anonymized release: {} edges | auxiliary crawl: {} edges | overlapping users: {}",
        pair.g1.edge_count(),
        pair.g2.edge_count(),
        pair.matchable_nodes()
    );

    // The attacker starts from a small set of already-identified public
    // figures — the paper notes (and Narayanan & Shmatikov did the same)
    // that high-degree nodes are the natural seeds.
    let seeds = sample_seeds_degree_biased(&pair, 0.02, &mut rng).expect("valid probability");
    println!("known identities (seeds): {}\n", seeds.len());

    let um_outcome =
        UserMatching::new(MatchingConfig::default().with_threshold(2).with_iterations(2))
            .run(&pair.g1, &pair.g2, &seeds);
    let um = Evaluation::score(&pair, &um_outcome.links, um_outcome.links.seed_count());

    let base_outcome = BaselineMatching::with_defaults().run(&pair.g1, &pair.g2, &seeds);
    let base = Evaluation::score(&pair, &base_outcome.links, base_outcome.links.seed_count());

    println!("                         re-identified   precision   share of users exposed");
    for (name, eval) in [("User-Matching", &um), ("common-neighbor baseline", &base)] {
        println!(
            "{name:<26} {:>10}   {:>8.2}%   {:>8.2}%",
            eval.new_good,
            100.0 * eval.precision(),
            100.0 * eval.recall()
        );
    }

    println!("\nContext from the paper: Narayanan & Shmatikov report 72% precision for their");
    println!("de-anonymization heuristic; User-Matching reaches a far lower error rate while");
    println!("scaling to networks their O((E1+E2)·Δ1·Δ2) scoring function cannot handle.");
}
