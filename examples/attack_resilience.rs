//! Resilience to a mirror-node attack.
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```
//!
//! Reproduces the paper's adversarial experiment as a runnable story: an
//! attacker creates a fake mirror profile of every user and half of the
//! victim's friends accept the fake's friend request. The example measures
//! how much damage this does to the reconciliation and how the matching
//! threshold trades recall for safety.

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_reconcile::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(424_242);

    println!("building the underlying network and its two copies (edge survival 0.75)…");
    let network = preferential_attachment(12_000, 12, &mut rng).expect("valid parameters");
    let clean =
        independent_deletion_symmetric(&network, 0.75, &mut rng).expect("valid probability");

    println!("injecting one malicious mirror node per user (friend-accept probability 0.5)…");
    let attacked = inject_attack(&clean, 0.5, &mut rng).expect("valid probability");
    println!(
        "each copy now has {} nodes ({} real + {} fake) and {} edges\n",
        attacked.g1.node_count(),
        clean.g1.node_count(),
        attacked.g1.node_count() - clean.g1.node_count(),
        attacked.g1.edge_count()
    );

    let seeds = sample_seeds(&attacked, 0.10, &mut rng).expect("valid probability");
    println!("seed links: {} (10% of real users)\n", seeds.len());

    println!("threshold   real users aligned   wrong   precision   share of real users aligned");
    let real_nodes = clean.g1.node_count();
    for threshold in [1u32, 2, 3, 4] {
        let config = MatchingConfig::default().with_threshold(threshold).with_iterations(2);
        let outcome = UserMatching::new(config).run(&attacked.g1, &attacked.g2, &seeds);
        let eval = Evaluation::score(&attacked, &outcome.links, outcome.links.seed_count());
        // Aligning the attacker's own two fake accounts with each other is
        // correct but uninteresting; report real users separately.
        let real_aligned = outcome
            .links
            .pairs()
            .filter(|&(u1, u2)| u1.index() < real_nodes && attacked.truth.is_correct(u1, u2))
            .count();
        println!(
            "    {threshold}     {:>14} {:>11}   {:>8.2}%   {:>8.2}%",
            real_aligned,
            eval.bad,
            100.0 * eval.precision(),
            100.0 * real_aligned as f64 / real_nodes as f64
        );
    }

    println!(
        "\nWhy the attack fails (paper, §1): to fool the algorithm an attacker must share many"
    );
    println!(
        "*already-identified* friends with the victim in both networks; copying a profile and"
    );
    println!("spamming friend requests gives the fake node witnesses in one network but not a");
    println!(
        "consistent set across both, so the mutual-best rule keeps preferring the real match."
    );
}
