//! Running User-Matching as MapReduce rounds.
//!
//! ```text
//! cargo run --release --example mapreduce_rounds
//! ```
//!
//! The paper's efficiency claim is about *round complexity*: it sketches
//! each phase of the algorithm as 4 MapReduce rounds, so a full run is
//! `O(k log D)` rounds. This reproduction's engine collapses each phase to
//! a *single* round (combiner mappers pre-aggregate scores on task-local
//! arenas, the packed shuffle is range-partitioned by candidate row, and
//! mutual-best selection is fused into the reduce), keeping the same
//! `O(k log D)` bound with a 4x smaller constant and a shuffle volume of
//! one record per scored pair instead of one per witness contribution.
//! This example runs the algorithm on the bundled in-memory MapReduce
//! engine and prints the actual rounds executed, the records and bytes
//! shuffled per round, and the phase structure, so the claims can be
//! checked against a live run rather than taken from the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_reconcile::core::{Backend, MatchingConfig, UserMatching};
use social_reconcile::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(9_000);

    let network = preferential_attachment(5_000, 10, &mut rng).expect("valid parameters");
    let pair = independent_deletion_symmetric(&network, 0.6, &mut rng).expect("valid probability");
    let seeds = sample_seeds(&pair, 0.08, &mut rng).expect("valid probability");

    let config = MatchingConfig::default()
        .with_threshold(2)
        .with_iterations(2)
        .with_backend(Backend::MapReduce { workers: 4 });
    let algo = UserMatching::new(config);
    let (outcome, engine_stats) = algo.run_with_round_stats(&pair.g1, &pair.g2, &seeds);

    let eval = Evaluation::score(&pair, &outcome.links, outcome.links.seed_count());
    println!(
        "matched {} users ({} beyond the seeds) at {:.2}% precision\n",
        eval.good,
        outcome.discovered(),
        100.0 * eval.precision()
    );

    println!("phase structure (k iterations × degree buckets, high degree first):");
    for phase in &outcome.phases {
        println!(
            "  iteration {} bucket 2^{:<2} candidates={:<7} new links={:<6} total={}",
            phase.iteration, phase.bucket, phase.scored_pairs, phase.new_links, phase.total_links
        );
    }

    println!("\nMapReduce execution:");
    println!("  phases: {}", outcome.phases.len());
    println!(
        "  rounds: {} (= 1 fused round per phase: combiner mappers score candidate rows, \
         the packed shuffle range-partitions by row, the reduce selects mutual bests)",
        engine_stats.rounds
    );
    println!("  {}", engine_stats.stats_summary());
    let heaviest = engine_stats
        .per_round
        .iter()
        .max_by_key(|r| r.shuffled_records)
        .expect("at least one round");
    println!(
        "  heaviest round: {:?} with {} shuffled records ({} pre-combine mapper pairs) \
         across {} reduce tasks",
        heaviest.label,
        heaviest.shuffled_records,
        heaviest.map_output_records,
        heaviest.reduce_tasks
    );

    let max_degree = pair.g1.max_degree().max(pair.g2.max_degree());
    let log_d = (usize::BITS - max_degree.leading_zeros()) as usize;
    println!(
        "\npaper bound: O(k log D) = O({} × {}) phases — observed {} phases, {} rounds",
        2,
        log_d,
        outcome.phases.len(),
        engine_stats.rounds
    );
}
