//! Quickstart: reconcile two partial copies of a synthetic social network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks through the full pipeline of the paper's model:
//! generate an underlying network, derive two partial copies, sample a small
//! seed set of linked accounts, run User-Matching, and score the result
//! against the ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_reconcile::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2014);

    // 1. The "true" underlying social network: a preferential-attachment
    //    graph with 20k users and ~200k friendships.
    println!("generating the underlying network…");
    let network = preferential_attachment(20_000, 10, &mut rng).expect("valid parameters");
    let stats = GraphStats::compute(&network);
    println!(
        "  {} nodes, {} edges, max degree {}, average degree {:.1}",
        stats.nodes, stats.edges, stats.max_degree, stats.avg_degree
    );

    // 2. Two online social networks, each capturing ~60% of the real
    //    friendships, with scrambled user ids.
    let pair = independent_deletion_symmetric(&network, 0.6, &mut rng).expect("valid probability");
    println!(
        "copy 1: {} edges, copy 2: {} edges, users identifiable in both: {}",
        pair.g1.edge_count(),
        pair.g2.edge_count(),
        pair.matchable_nodes()
    );

    // 3. A small fraction of users (5%) have explicitly linked their two
    //    accounts; these are the seed links.
    let seeds = sample_seeds(&pair, 0.05, &mut rng).expect("valid probability");
    println!("seed links: {}", seeds.len());

    // 4. Run the User-Matching algorithm (threshold 2, two sweeps).
    let config = MatchingConfig::default().with_threshold(2).with_iterations(2);
    let outcome = UserMatching::new(config).run(&pair.g1, &pair.g2, &seeds);
    println!(
        "algorithm finished in {:.2?}: {} links total ({} discovered beyond the seeds)",
        outcome.total_duration,
        outcome.links.len(),
        outcome.discovered()
    );

    // 5. Score against the ground truth (which the algorithm never saw).
    let eval = Evaluation::score(&pair, &outcome.links, outcome.links.seed_count());
    println!(
        "precision on new links: {:.2}%, recall of matchable users: {:.2}%",
        100.0 * eval.precision(),
        100.0 * eval.recall()
    );
    println!("newly identified users: {} correct, {} wrong", eval.new_good, eval.new_bad);
}
