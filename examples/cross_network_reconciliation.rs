//! Cross-network reconciliation with correlated scopes.
//!
//! ```text
//! cargo run --release --example cross_network_reconciliation
//! ```
//!
//! The motivating scenario of the paper's introduction: a user's personal
//! network (Facebook-like) and professional network (LinkedIn-like) expose
//! *different parts* of her real ego-network. We model the real network as
//! an affiliation network (users grouped into communities — families, teams,
//! clubs), and build the two online networks by deleting whole communities
//! independently per copy, exactly the Table 4 setting. The example also
//! shows the effect of degree-biased seeds (celebrities link their accounts
//! more often), an extension discussed in §3.1.

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_reconcile::prelude::*;

fn report(label: &str, pair: &RealizationPair, seeds: &[(NodeId, NodeId)]) {
    let config = MatchingConfig::default().with_threshold(2).with_iterations(2);
    let outcome = UserMatching::new(config).run(&pair.g1, &pair.g2, seeds);
    let eval = Evaluation::score(pair, &outcome.links, outcome.links.seed_count());
    println!(
        "{label:<28} seeds={:<5} discovered={:<6} precision={:>6.2}% recall={:>6.2}%",
        seeds.len(),
        outcome.discovered(),
        100.0 * eval.precision(),
        100.0 * eval.recall()
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    // The "real" social structure: 8,000 users in ~800 overlapping
    // communities (families, workplaces, clubs).
    let config =
        AffiliationConfig { users: 8_000, communities: 800, memberships_per_user: 4, fold_cap: 25 };
    println!("generating the affiliation network…");
    let network = AffiliationNetwork::generate(&config, &mut rng).expect("valid parameters");
    println!(
        "  {} users, {} communities, {} friendships",
        network.user_count(),
        network.community_count(),
        network.graph.edge_count()
    );

    // Each online network only sees the communities its scope covers: every
    // community is dropped from a copy independently with probability 0.25.
    let pair = community_deletion(&network, 0.25, &mut rng).expect("valid probability");
    println!(
        "personal copy: {} edges | professional copy: {} edges | users visible in both: {}\n",
        pair.g1.edge_count(),
        pair.g2.edge_count(),
        pair.matchable_nodes()
    );

    println!("reconciliation quality as the seed set changes:");
    for link_prob in [0.02, 0.05, 0.10] {
        let seeds = sample_seeds(&pair, link_prob, &mut rng).expect("valid probability");
        report(&format!("uniform seeds ({}%)", (link_prob * 100.0) as u32), &pair, &seeds);
    }

    // Celebrities / highly connected users are more likely to cross-link
    // their accounts; the paper argues this can only help the algorithm.
    let biased = sample_seeds_degree_biased(&pair, 0.05, &mut rng).expect("valid probability");
    report("degree-biased seeds (5%)", &pair, &biased);

    println!("\nTakeaway: even with whole social circles missing from one of the copies, a few");
    println!("percent of linked accounts is enough to reconcile most users with ~100% precision.");
}
